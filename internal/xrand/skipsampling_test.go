package xrand_test

// Distributional witnesses for the lane engine's skip-sampling stream
// (see internal/lanes): BinomialExp counts exactly the geometric skips
// the lane transmitter sampler walks, so BinomialExp ≡ Binomial in
// distribution is the statistical guarantee that lane trials sample the
// same per-round transmitter-count law as scalar trials.

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// chiSquareTwoSample compares two equal-size histograms; returns the
// statistic and degrees of freedom (pooling empty bins).
func chiSquareTwoSample(a, b []int) (float64, int) {
	chi2, df := 0.0, 0
	for i := range a {
		s := a[i] + b[i]
		if s == 0 {
			continue
		}
		d := float64(a[i] - b[i])
		chi2 += d * d / float64(s)
		df++
	}
	return chi2, df - 1
}

func TestBinomialExpMatchesBinomialChiSquare(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{40, 0.04},  // the lane engine's selective-phase regime
		{200, 0.1},  // moderate
		{64, 0.75},  // exercises the p > 0.5 mirror
		{1000, 0.5}, // symmetric
	}
	for _, tc := range cases {
		const draws = 1 << 16
		ra := xrand.New(411)
		rb := xrand.New(97)
		bins := tc.n + 1
		a := make([]int, bins)
		b := make([]int, bins)
		for i := 0; i < draws; i++ {
			a[ra.Binomial(tc.n, tc.p)]++
			b[rb.BinomialExp(tc.n, tc.p)]++
		}
		chi2, df := chiSquareTwoSample(a, b)
		// 5-sigma band around the chi-square mean df.
		if limit := float64(df) + 5*math.Sqrt(2*float64(df)); chi2 > limit {
			t.Errorf("Binomial(%d, %g) vs BinomialExp: chi2=%.1f df=%d (limit %.1f)", tc.n, tc.p, chi2, df, limit)
		}
	}
}

func TestGeometricExpAgainstTheory(t *testing.T) {
	// GeometricExp(lam) = floor(Exp(lam)) is geometric with success
	// probability 1 - e^-lam: P(X = k) = (1 - q) q^k, q = e^-lam. This is
	// the per-lane skip law of the lane engine at q_round = 1 - e^-lam.
	const lam = 0.25
	q := math.Exp(-lam)
	const draws = 1 << 17
	const bins = 24 // tail pooled into the last bin
	counts := make([]int, bins)
	r := xrand.New(20260808)
	for i := 0; i < draws; i++ {
		k := r.GeometricExp(lam)
		if k >= bins-1 {
			k = bins - 1
		}
		counts[k]++
	}
	chi2, df := 0.0, bins-1
	for k := 0; k < bins; k++ {
		pk := (1 - q) * math.Pow(q, float64(k))
		if k == bins-1 {
			pk = math.Pow(q, float64(k)) // tail mass
		}
		exp := pk * draws
		d := float64(counts[k]) - exp
		chi2 += d * d / exp
	}
	if limit := float64(df) + 5*math.Sqrt(2*float64(df)); chi2 > limit {
		t.Errorf("GeometricExp(%g): chi2=%.1f df=%d (limit %.1f)", lam, chi2, df, limit)
	}
}

// TestReseedMatchesNew: Reseed(s) must put the generator in exactly the
// state New(s) starts in — the lane engine reseeds one generator per
// lane per trial instead of allocating fresh ones.
func TestReseedMatchesNew(t *testing.T) {
	r := xrand.New(1)
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef, ^uint64(0)} {
		r.Reseed(seed)
		fresh := xrand.New(seed)
		for i := 0; i < 32; i++ {
			if a, b := r.Uint64(), fresh.Uint64(); a != b {
				t.Fatalf("seed %d, draw %d: Reseed stream %x != New stream %x", seed, i, a, b)
			}
		}
	}
}
