// Package viz renders tiny terminal visualisations — sparklines and
// horizontal bar histograms — used by the CLI tools to show broadcast
// progress curves and degree distributions without leaving the terminal.
package viz

import (
	"fmt"
	"math"
	"strings"
)

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode sparkline scaled to the
// data range. Empty input yields an empty string; NaNs render as spaces.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	var b strings.Builder
	span := hi - lo
	for _, v := range values {
		if math.IsNaN(v) {
			b.WriteByte(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Histogram renders labelled counts as horizontal bars at most width
// characters wide, one line per bucket:
//
//	label |█████████ 42
func Histogram(labels []string, counts []int, width int) string {
	if len(labels) != len(counts) {
		panic("viz: labels/counts length mismatch")
	}
	if width < 1 {
		width = 40
	}
	maxCount := 0
	labelWidth := 0
	for i, c := range counts {
		if c > maxCount {
			maxCount = c
		}
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	var b strings.Builder
	for i, c := range counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %d\n", labelWidth, labels[i], strings.Repeat("█", bar), c)
	}
	return b.String()
}

// Buckets groups integer values into k equal-width buckets over their
// range and returns labels plus counts, ready for Histogram. Returns nil
// slices for empty input.
func Buckets(values []int, k int) (labels []string, counts []int) {
	if len(values) == 0 || k < 1 {
		return nil, nil
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return []string{fmt.Sprintf("%d", lo)}, []int{len(values)}
	}
	span := hi - lo + 1
	if k > span {
		k = span
	}
	counts = make([]int, k)
	labels = make([]string, k)
	for i := range labels {
		bLo := lo + i*span/k
		bHi := lo + (i+1)*span/k - 1
		if bLo == bHi {
			labels[i] = fmt.Sprintf("%d", bLo)
		} else {
			labels[i] = fmt.Sprintf("%d-%d", bLo, bHi)
		}
	}
	for _, v := range values {
		i := (v - lo) * k / span
		if i >= k {
			i = k - 1
		}
		counts[i]++
	}
	return labels, counts
}
