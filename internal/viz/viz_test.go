package viz

import (
	"math"
	"strings"
	"testing"
)

func TestSparklineBasics(t *testing.T) {
	if s := Sparkline(nil); s != "" {
		t.Fatalf("empty sparkline %q", s)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	runes := []rune(s)
	if len(runes) != 8 {
		t.Fatalf("sparkline length %d", len(runes))
	}
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("sparkline extremes %q", s)
	}
	// Monotone input -> monotone glyphs.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("sparkline not monotone: %q", s)
		}
	}
}

func TestSparklineFlat(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5})
	if len([]rune(s)) != 3 {
		t.Fatalf("flat sparkline %q", s)
	}
	for _, r := range s {
		if r != '▁' {
			t.Fatalf("flat sparkline should use the lowest glyph: %q", s)
		}
	}
}

func TestSparklineNaN(t *testing.T) {
	s := Sparkline([]float64{math.NaN(), 1, math.NaN()})
	runes := []rune(s)
	if runes[0] != ' ' || runes[2] != ' ' {
		t.Fatalf("NaN rendering %q", s)
	}
	all := Sparkline([]float64{math.NaN()})
	if all != " " {
		t.Fatalf("all-NaN %q", all)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]string{"a", "bb"}, []int{2, 4}, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("histogram lines %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 8)) {
		t.Fatalf("max bucket not full width: %q", lines[1])
	}
	if !strings.Contains(lines[0], strings.Repeat("█", 4)) {
		t.Fatalf("half bucket wrong: %q", lines[0])
	}
	if !strings.Contains(lines[0], " 2") || !strings.Contains(lines[1], " 4") {
		t.Fatal("counts missing")
	}
}

func TestHistogramNonZeroGetsAtLeastOneBar(t *testing.T) {
	out := Histogram([]string{"tiny", "huge"}, []int{1, 1000}, 10)
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "█") {
		t.Fatalf("nonzero count has no bar: %q", lines[0])
	}
}

func TestHistogramMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch did not panic")
		}
	}()
	Histogram([]string{"a"}, []int{1, 2}, 10)
}

func TestBuckets(t *testing.T) {
	labels, counts := Buckets([]int{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	if len(labels) != 4 || len(counts) != 4 {
		t.Fatalf("buckets %v %v", labels, counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 8 {
		t.Fatalf("bucket counts sum %d", total)
	}
	if counts[0] != 2 || counts[3] != 2 {
		t.Fatalf("uniform data unevenly bucketed: %v", counts)
	}
}

func TestBucketsDegenerate(t *testing.T) {
	if l, c := Buckets(nil, 4); l != nil || c != nil {
		t.Fatal("empty buckets not nil")
	}
	l, c := Buckets([]int{7, 7, 7}, 4)
	if len(l) != 1 || c[0] != 3 || l[0] != "7" {
		t.Fatalf("constant buckets %v %v", l, c)
	}
	// k larger than span collapses to span buckets.
	l, _ = Buckets([]int{1, 2}, 10)
	if len(l) != 2 {
		t.Fatalf("span clamp gave %d buckets", len(l))
	}
}
