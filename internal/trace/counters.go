package trace

import "fmt"

// Counters is an Observer that accumulates aggregate metrics across one or
// more runs. The zero value is ready to use.
//
// The radio engine uses an embedded Counters as its own accounting
// (Engine.Stats reads from it), so an attached Counters observer is
// guaranteed to agree with the engine's stats: both are fed the same
// RoundRecord through the same Apply method.
type Counters struct {
	// Runs is the number of BeginRun notifications seen.
	Runs int
	// Completed is the number of runs that ended with every node informed.
	Completed int
	// Rounds is the total number of rounds observed.
	Rounds int
	// Transmissions is the total number of node-transmissions.
	Transmissions int
	// Successes is the total number of clean receptions by listening nodes
	// (including already-informed listeners).
	Successes int
	// Collisions is the total number of listener-rounds lost to two or
	// more transmitting neighbours.
	Collisions int
	// Silent is the total number of listener-rounds spent hearing nothing.
	Silent int
	// NewlyInformed is the total number of first-time message deliveries.
	NewlyInformed int
	// Informed is the cumulative informed count after the most recently
	// observed round (the final frontier size of the last run).
	Informed int
}

// Apply folds one round record into the counters. It is the single
// accounting step shared by the observer path and the engine's internal
// stats, so the two cannot drift.
func (c *Counters) Apply(r RoundRecord) {
	c.Rounds++
	c.Transmissions += r.Transmitters
	c.Successes += r.Successes
	c.Collisions += r.Collisions
	c.Silent += r.Silent
	c.NewlyInformed += r.NewlyInformed
	c.Informed = r.Informed
}

// BeginRun implements Observer.
func (c *Counters) BeginRun(RunInfo) { c.Runs++ }

// Round implements Observer.
func (c *Counters) Round(r RoundRecord) { c.Apply(r) }

// EndRun implements Observer.
func (c *Counters) EndRun(s Summary) {
	if s.Completed {
		c.Completed++
	}
}

// Add merges another set of counters into c. Merging per-worker counters
// from a concurrent sweep yields the same totals as a serial run, since
// every field is a sum (Informed, a last-value gauge, is kept as the max
// so the merge is order-independent).
func (c *Counters) Add(o Counters) {
	c.Runs += o.Runs
	c.Completed += o.Completed
	c.Rounds += o.Rounds
	c.Transmissions += o.Transmissions
	c.Successes += o.Successes
	c.Collisions += o.Collisions
	c.Silent += o.Silent
	c.NewlyInformed += o.NewlyInformed
	if o.Informed > c.Informed {
		c.Informed = o.Informed
	}
}

// Reset zeroes the counters.
func (c *Counters) Reset() { *c = Counters{} }

// String summarises the counters for log output.
func (c Counters) String() string {
	return fmt.Sprintf("runs=%d completed=%d rounds=%d tx=%d ok=%d col=%d silent=%d new=%d",
		c.Runs, c.Completed, c.Rounds, c.Transmissions, c.Successes, c.Collisions, c.Silent, c.NewlyInformed)
}
