package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// JSONLWriter is an Observer that streams a run as JSON Lines: one
// "begin" record, one record per round, one "end" record. Each line is a
// single JSON object whose "type" field is "begin", "round" or "end"; the
// remaining fields are the corresponding RunInfo, RoundRecord or Summary
// fields. Field order is fixed by the struct definitions, so output for a
// fixed seed is byte-for-byte reproducible (see the golden-file test).
//
// Writes are buffered; EndRun flushes. Call Flush explicitly when driving
// rounds manually, and check Err once the run is over: the writer is
// error-sticky and stops writing after the first underlying write error.
type JSONLWriter struct {
	w   *bufio.Writer
	err error
	// RoundsOnly suppresses the begin/end lines, leaving exactly one line
	// per executed round.
	RoundsOnly bool
}

// NewJSONLWriter returns a JSONL writer streaming to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

type jsonlBegin struct {
	Type string `json:"type"`
	RunInfo
}

type jsonlRound struct {
	Type string `json:"type"`
	RoundRecord
}

type jsonlEnd struct {
	Type string `json:"type"`
	Summary
}

func (j *JSONLWriter) emit(v interface{}) {
	if j.err != nil {
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(line); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
}

// BeginRun implements Observer.
func (j *JSONLWriter) BeginRun(info RunInfo) {
	if j.RoundsOnly {
		return
	}
	j.emit(jsonlBegin{Type: "begin", RunInfo: info})
}

// Round implements Observer.
func (j *JSONLWriter) Round(r RoundRecord) {
	j.emit(jsonlRound{Type: "round", RoundRecord: r})
}

// EndRun implements Observer.
func (j *JSONLWriter) EndRun(s Summary) {
	if !j.RoundsOnly {
		j.emit(jsonlEnd{Type: "end", Summary: s})
	}
	j.flush()
}

func (j *JSONLWriter) flush() {
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
}

// Flush writes out any buffered lines.
func (j *JSONLWriter) Flush() error {
	j.flush()
	return j.err
}

// Err returns the first error encountered while writing, if any.
func (j *JSONLWriter) Err() error { return j.err }
