package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// LineEncoder writes arbitrary records as JSON Lines: one Encode call,
// one JSON object, one line. Writes are buffered and the encoder is
// error-sticky — after the first marshal or write error every further
// Encode is a no-op and Err reports the first failure. It is the shared
// plumbing of JSONLWriter and the campaign checkpoint writer; any code
// that streams records to disk in this repository should use it rather
// than reimplementing buffered line-oriented JSON.
type LineEncoder struct {
	w   *bufio.Writer
	err error
}

// NewLineEncoder returns a LineEncoder streaming to w.
func NewLineEncoder(w io.Writer) *LineEncoder {
	return &LineEncoder{w: bufio.NewWriter(w)}
}

// Encode marshals v and writes it as one line.
func (e *LineEncoder) Encode(v interface{}) {
	if e.err != nil {
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		e.err = err
		return
	}
	if _, err := e.w.Write(line); err != nil {
		e.err = err
		return
	}
	e.err = e.w.WriteByte('\n')
}

// Flush writes out any buffered lines and returns the first error seen.
func (e *LineEncoder) Flush() error {
	if err := e.w.Flush(); err != nil && e.err == nil {
		e.err = err
	}
	return e.err
}

// Err returns the first error encountered while encoding or writing.
func (e *LineEncoder) Err() error { return e.err }

// JSONLWriter is an Observer that streams a run as JSON Lines: one
// "begin" record, one record per round, one "end" record. Each line is a
// single JSON object whose "type" field is "begin", "round" or "end"; the
// remaining fields are the corresponding RunInfo, RoundRecord or Summary
// fields. Field order is fixed by the struct definitions, so output for a
// fixed seed is byte-for-byte reproducible (see the golden-file test).
//
// Writes are buffered; EndRun flushes. Call Flush explicitly when driving
// rounds manually, and check Err once the run is over: the writer is
// error-sticky and stops writing after the first underlying write error.
type JSONLWriter struct {
	enc *LineEncoder
	// RoundsOnly suppresses the begin/end lines, leaving exactly one line
	// per executed round.
	RoundsOnly bool
}

// NewJSONLWriter returns a JSONL writer streaming to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: NewLineEncoder(w)}
}

type jsonlBegin struct {
	Type string `json:"type"`
	RunInfo
}

type jsonlRound struct {
	Type string `json:"type"`
	RoundRecord
}

type jsonlEnd struct {
	Type string `json:"type"`
	Summary
}

// BeginRun implements Observer.
func (j *JSONLWriter) BeginRun(info RunInfo) {
	if j.RoundsOnly {
		return
	}
	j.enc.Encode(jsonlBegin{Type: "begin", RunInfo: info})
}

// Round implements Observer.
func (j *JSONLWriter) Round(r RoundRecord) {
	j.enc.Encode(jsonlRound{Type: "round", RoundRecord: r})
}

// EndRun implements Observer.
func (j *JSONLWriter) EndRun(s Summary) {
	if !j.RoundsOnly {
		j.enc.Encode(jsonlEnd{Type: "end", Summary: s})
	}
	j.enc.Flush()
}

// Flush writes out any buffered lines.
func (j *JSONLWriter) Flush() error { return j.enc.Flush() }

// Err returns the first error encountered while writing, if any.
func (j *JSONLWriter) Err() error { return j.enc.Err() }
