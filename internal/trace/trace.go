// Package trace is the round-level observability layer of the simulator:
// an Observer interface that the radio engine (and the gossip runner)
// notify once per executed round, plus a small kit of concrete observers —
// aggregate counters, a streaming JSONL writer, a Lemma-3 frontier
// profiler, a composing multiplexer and an in-memory recorder.
//
// The paper's bounds (Theorems 5–8) are statements about per-round
// dynamics — layer-by-layer growth |T_i| ≈ d^i (Lemma 3), collision rates
// under 1/d-selective transmission — so the per-round quantities carried by
// RoundRecord (transmitters, clean receptions, collisions, silent
// listeners, frontier growth) are exactly what the experiments measure.
//
// The layer is zero-cost when disabled: the engine only builds a
// RoundRecord and calls the observer when one is attached, so the untraced
// runners keep their allocation-free hot path (verified by
// TestRunProtocolOnNilObserverAllocs and BenchmarkBroadcastReuse).
//
// The package deliberately imports nothing from the simulation packages;
// internal/radio and internal/gossip import trace, never the reverse.
package trace

import "fmt"

// RoundRecord describes one executed round of a radio simulation. All
// per-round quantities partition the node set: every node either
// transmits, cleanly receives, loses the round to a collision, or hears
// silence (no transmitting neighbour).
type RoundRecord struct {
	// Round is the 1-based index of the executed round.
	Round int `json:"round"`
	// Transmitters is the number of nodes that transmitted this round
	// (after policy filtering and deduplication).
	Transmitters int `json:"tx"`
	// Successes is the number of listening nodes that cleanly received the
	// transmission this round (exactly one transmitting neighbour),
	// whether or not they were already informed.
	Successes int `json:"ok"`
	// Collisions is the number of listening nodes that lost this round to
	// two or more transmitting neighbours.
	Collisions int `json:"col"`
	// Silent is the number of listening nodes with no transmitting
	// neighbour this round (silence is indistinguishable from collision in
	// the model; the simulator can tell them apart).
	Silent int `json:"silent"`
	// NewlyInformed is the number of nodes informed for the first time
	// this round — the growth of the information frontier.
	NewlyInformed int `json:"new"`
	// Informed is the cumulative informed count after the round.
	Informed int `json:"informed"`
}

// Listeners returns the number of listening nodes this round.
func (r RoundRecord) Listeners() int { return r.Successes + r.Collisions + r.Silent }

// String formats the record for log output.
func (r RoundRecord) String() string {
	return fmt.Sprintf("round %3d: %6d transmitters, %6d clean, %6d collided, %6d newly informed, %7d total",
		r.Round, r.Transmitters, r.Successes, r.Collisions, r.NewlyInformed, r.Informed)
}

// RunInfo describes a run at the moment it starts.
type RunInfo struct {
	// N is the number of nodes in the graph.
	N int `json:"n"`
	// M is the number of edges in the graph.
	M int `json:"m"`
	// Sources is the number of initially informed nodes (1 for single-source
	// broadcast).
	Sources int `json:"sources"`
	// MaxRounds is the round budget (schedule length for schedule replays).
	MaxRounds int `json:"max_rounds"`
}

// Summary describes a completed run. It mirrors the engine's final Result
// and Stats without importing them, keeping this package dependency-free.
type Summary struct {
	// Completed reports whether every node was informed.
	Completed bool `json:"completed"`
	// Rounds is the number of rounds executed.
	Rounds int `json:"rounds"`
	// Informed is the number of informed nodes at the end.
	Informed int `json:"informed"`
	// N is the graph size.
	N int `json:"n"`
	// Transmissions, Successes, Collisions and NewlyInformed are the run
	// totals of the corresponding RoundRecord fields.
	Transmissions int `json:"tx"`
	Successes     int `json:"ok"`
	Collisions    int `json:"col"`
	NewlyInformed int `json:"new"`
}

// Observer receives the per-round stream of a simulation run. Attach one
// to an engine (Engine.Attach) or pass it to the observed runners.
//
// Observers are not synchronised: one observer must only ever be driven by
// one engine/runner at a time. Concurrent sweeps use one observer per
// worker and merge afterwards (see sweep.RunObserved and Counters.Add).
//
// Runners drive the full BeginRun / Round* / EndRun cycle. Code that steps
// an engine manually via Engine.Round only produces Round notifications.
type Observer interface {
	// BeginRun is called once before the first round of a run.
	BeginRun(RunInfo)
	// Round is called after every executed round.
	Round(RoundRecord)
	// EndRun is called once after the last round of a run.
	EndRun(Summary)
}

// TransmitterObserver is an optional extension of Observer: an observer
// that also implements it additionally receives, for every executed
// round, the effective transmitter set — after policy filtering and
// deduplication, exactly the nodes whose transmissions the engine
// simulates. The slice aliases engine-owned scratch and is only valid for
// the duration of the call; copy it to retain it.
//
// The hook exists for correctness tooling (the internal/oracle
// differential harness replays recorded transmitter sets against a naive
// reference simulator); engines check for the extension once at Attach
// time, so observers that do not implement it pay nothing.
type TransmitterObserver interface {
	// RoundTransmitters is called before the round is classified, with the
	// 1-based round index about to execute and its effective transmitter
	// set.
	RoundTransmitters(round int, tx []int32)
}

// Recorder is an Observer that stores everything it sees in memory: the
// run info, every round record, and the final summary. It is the bridge
// between the streaming observer layer and code that wants a complete
// trace as a value (radio.RunProtocolTrace, the planner example).
type Recorder struct {
	Info    RunInfo
	Records []RoundRecord
	Summary Summary
	// Began and Ended report whether the begin/end hooks fired (false when
	// the recorder only saw manually driven rounds).
	Began, Ended bool
}

// BeginRun implements Observer.
func (r *Recorder) BeginRun(info RunInfo) {
	r.Info = info
	r.Began = true
}

// Round implements Observer.
func (r *Recorder) Round(rec RoundRecord) { r.Records = append(r.Records, rec) }

// EndRun implements Observer.
func (r *Recorder) EndRun(s Summary) {
	r.Summary = s
	r.Ended = true
}

// Reset clears the recorder for reuse across runs.
func (r *Recorder) Reset() { *r = Recorder{} }
