package trace

// Multi composes observers: every notification fans out to each observer
// in order. Nil entries are dropped; Multi() and Multi(nil) return nil, and
// Multi(o) returns o itself, so callers can compose unconditionally
// without adding indirection in the common zero- and one-observer cases.
func Multi(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return multi(kept)
	}
}

type multi []Observer

// BeginRun implements Observer.
func (m multi) BeginRun(info RunInfo) {
	for _, o := range m {
		o.BeginRun(info)
	}
}

// Round implements Observer.
func (m multi) Round(r RoundRecord) {
	for _, o := range m {
		o.Round(r)
	}
}

// EndRun implements Observer.
func (m multi) EndRun(s Summary) {
	for _, o := range m {
		o.EndRun(s)
	}
}
