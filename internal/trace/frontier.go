package trace

import "math"

// FrontierProfile is an Observer that captures the growth of the
// information frontier: Growth[i] is the number of nodes informed for the
// first time in round i (Growth[0] is the source count). For the
// non-selective flooding phase of the paper's protocols the frontier is
// exactly the BFS layer structure of Lemma 3, so the growth ratios should
// track d while layers are small compared to n/d.
//
// The profile records the last observed run; Reset (or a new BeginRun)
// clears it.
type FrontierProfile struct {
	// N is the graph size of the observed run.
	N int
	// Degree is an optional expected average degree used by Predicted; set
	// it to the d of the sampled G(n, d/n).
	Degree float64
	// Growth[i] is the newly informed count of round i; Growth[0] is the
	// number of sources.
	Growth []int
	// Cumulative[i] is the informed count after round i.
	Cumulative []int
}

// BeginRun implements Observer.
func (f *FrontierProfile) BeginRun(info RunInfo) {
	f.N = info.N
	f.Growth = append(f.Growth[:0], info.Sources)
	f.Cumulative = append(f.Cumulative[:0], info.Sources)
}

// Round implements Observer.
func (f *FrontierProfile) Round(r RoundRecord) {
	if len(f.Growth) == 0 {
		// Manually driven engine without BeginRun: synthesise layer 0 from
		// the first record.
		f.Growth = append(f.Growth, r.Informed-r.NewlyInformed)
		f.Cumulative = append(f.Cumulative, r.Informed-r.NewlyInformed)
	}
	f.Growth = append(f.Growth, r.NewlyInformed)
	f.Cumulative = append(f.Cumulative, r.Informed)
}

// EndRun implements Observer.
func (f *FrontierProfile) EndRun(Summary) {}

// Reset clears the profile for reuse.
func (f *FrontierProfile) Reset() {
	f.N = 0
	f.Growth = f.Growth[:0]
	f.Cumulative = f.Cumulative[:0]
}

// Rounds returns the number of observed rounds.
func (f *FrontierProfile) Rounds() int {
	if len(f.Growth) == 0 {
		return 0
	}
	return len(f.Growth) - 1
}

// GrowthRatios returns Growth[i+1]/Growth[i] for consecutive rounds with
// nonzero frontiers (NaN where the earlier frontier is empty) — the
// measurable analogue of Lemma 3's |T_{i+1}|/|T_i| ≈ d.
func (f *FrontierProfile) GrowthRatios() []float64 {
	if len(f.Growth) < 2 {
		return nil
	}
	out := make([]float64, 0, len(f.Growth)-1)
	for i := 0; i+1 < len(f.Growth); i++ {
		if f.Growth[i] == 0 {
			out = append(out, math.NaN())
			continue
		}
		out = append(out, float64(f.Growth[i+1])/float64(f.Growth[i]))
	}
	return out
}

// Predicted returns the Lemma-3 prediction min(d^i, n) for the cumulative
// informed count after round i, using the configured Degree. It returns 0
// when Degree is unset.
func (f *FrontierProfile) Predicted(i int) float64 {
	if f.Degree <= 0 || f.N == 0 {
		return 0
	}
	p := math.Pow(f.Degree, float64(i))
	if p > float64(f.N) {
		return float64(f.N)
	}
	return p
}
