package trace_test

// External test package so the tests can drive the real engine
// (internal/radio imports internal/trace, not the reverse).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedRun executes the reference broadcast used by the golden test: the
// paper's 1/d-selective shape on a fixed G(n,p) sample and a fixed seed.
func fixedRun(obs trace.Observer) radio.Result {
	const n = 64
	const d = 6.0
	g := gen.Gnp(n, d/n, xrand.New(2006))
	p := radio.ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		if round <= 2 {
			return true
		}
		return r.Bernoulli(1 / d)
	})
	e := radio.NewEngine(g, 0, radio.StrictInformed)
	e.Attach(obs)
	return radio.RunProtocolOn(e, p, 40, xrand.New(7))
}

// TestJSONLWriterGolden locks the JSONL byte format on a fixed seed: one
// begin line, one line per executed round, one end line. Regenerate with
// `go test ./internal/trace -run Golden -update` after an intentional
// format change.
func TestJSONLWriterGolden(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewJSONLWriter(&buf)
	res := fixedRun(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "broadcast.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("JSONL output diverged from golden file (run with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
			buf.String(), string(want))
	}
	// Sanity: every line is valid JSON, and the line count is rounds+2.
	lines := 0
	rounds := 0
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		lines++
		var m map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		if m["type"] == "round" {
			rounds++
		}
	}
	if rounds != res.Rounds || lines != res.Rounds+2 {
		t.Fatalf("got %d lines / %d round lines for %d rounds", lines, rounds, res.Rounds)
	}
}

func TestJSONLWriterRoundsOnly(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewJSONLWriter(&buf)
	w.RoundsOnly = true
	res := fixedRun(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	got := strings.Count(buf.String(), "\n")
	if got != res.Rounds {
		t.Fatalf("%d lines for %d rounds", got, res.Rounds)
	}
	if strings.Contains(buf.String(), `"type":"begin"`) || strings.Contains(buf.String(), `"type":"end"`) {
		t.Fatal("RoundsOnly emitted begin/end lines")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, os.ErrClosed
}

func TestJSONLWriterStickyError(t *testing.T) {
	fw := &failWriter{}
	w := trace.NewJSONLWriter(fw)
	fixedRun(w)
	if w.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	// bufio coalesces writes, so the underlying writer sees at most a
	// couple of attempts — the writer must stop after the first failure
	// rather than retry per round.
	if fw.n > 2 {
		t.Fatalf("underlying writer called %d times after error", fw.n)
	}
}

func TestCountersAggregateAndMerge(t *testing.T) {
	var a, b trace.Counters
	fixedRun(&a)
	fixedRun(&b)
	if a != b {
		t.Fatalf("identical runs produced different counters: %+v vs %+v", a, b)
	}
	merged := a
	merged.Add(b)
	if merged.Runs != 2 || merged.Rounds != 2*a.Rounds || merged.Transmissions != 2*a.Transmissions {
		t.Fatalf("merge wrong: %+v", merged)
	}
	if merged.Informed != a.Informed {
		t.Fatalf("merged informed gauge %d, want %d", merged.Informed, a.Informed)
	}
	a.Reset()
	if a != (trace.Counters{}) {
		t.Fatalf("reset left %+v", a)
	}
}

func TestMultiComposesAndCollapses(t *testing.T) {
	if trace.Multi() != nil || trace.Multi(nil) != nil {
		t.Fatal("empty Multi should be nil")
	}
	var c trace.Counters
	if trace.Multi(nil, &c) != trace.Observer(&c) {
		t.Fatal("single-observer Multi should collapse to the observer itself")
	}
	var c2 trace.Counters
	var rec trace.Recorder
	m := trace.Multi(&c2, nil, &rec)
	res := fixedRun(m)
	if c2.Rounds != res.Rounds || len(rec.Records) != res.Rounds {
		t.Fatalf("fan-out incomplete: counters %d rounds, recorder %d records, run %d rounds",
			c2.Rounds, len(rec.Records), res.Rounds)
	}
	if !rec.Began || !rec.Ended {
		t.Fatal("begin/end not fanned out")
	}
}

// TestFrontierProfileMatchesLayers: under pure flooding on a path the
// frontier advances exactly one BFS layer per round.
func TestFrontierProfileMatchesLayers(t *testing.T) {
	g := gen.Path(8)
	flood := radio.ProtocolFunc(func(int32, int, int32, *xrand.Rand) bool { return true })
	e := radio.NewEngine(g, 0, radio.StrictInformed)
	var f trace.FrontierProfile
	f.Degree = 1
	e.Attach(&f)
	res := radio.RunProtocolOn(e, flood, 20, xrand.New(1))
	if !res.Completed {
		t.Fatalf("flooding on a path must complete: %+v", res)
	}
	if f.Rounds() != res.Rounds {
		t.Fatalf("profile rounds %d != run rounds %d", f.Rounds(), res.Rounds)
	}
	if f.N != 8 || f.Growth[0] != 1 {
		t.Fatalf("profile start %+v", f)
	}
	for i := 1; i <= res.Rounds; i++ {
		if f.Growth[i] != 1 {
			t.Fatalf("round %d frontier growth %d, want 1 (path flooding)", i, f.Growth[i])
		}
		if f.Cumulative[i] != i+1 {
			t.Fatalf("round %d cumulative %d, want %d", i, f.Cumulative[i], i+1)
		}
	}
	for i, r := range f.GrowthRatios() {
		if r != 1 {
			t.Fatalf("growth ratio %d = %v, want 1", i, r)
		}
	}
	if f.Predicted(3) != 1 {
		t.Fatalf("predicted(3) = %v with d=1", f.Predicted(3))
	}
	f.Reset()
	if f.Rounds() != 0 || f.N != 0 {
		t.Fatalf("reset left %+v", f)
	}
}

func TestRoundRecordPartition(t *testing.T) {
	r := trace.RoundRecord{Transmitters: 3, Successes: 2, Collisions: 4, Silent: 5}
	if r.Listeners() != 11 {
		t.Fatalf("listeners %d", r.Listeners())
	}
	s := r.String()
	for _, want := range []string{"3", "2", "4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() %q missing %q", s, want)
		}
	}
}
