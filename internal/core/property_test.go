package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// Property sweep: across random (n, d, source, seed) configurations, the
// centralized schedule must (a) build without error on connected inputs,
// (b) replay to completion under the strict policy, (c) respect the
// eccentricity lower bound, and (d) stay within a generous constant of
// the Theorem 5 bound.
func TestCentralizedSchedulePropertySweep(t *testing.T) {
	rng := xrand.New(4242)
	for trial := 0; trial < 15; trial++ {
		n := 200 + rng.Intn(1800)
		lnN := math.Log(float64(n))
		d := (1.5 + 4*rng.Float64()) * lnN
		g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), rng, 50)
		if !ok {
			continue
		}
		src := rng.Int31n(int32(n))
		seed := rng.Uint64()
		sched, trace, err := BuildCentralizedSchedule(g, src, d, DefaultCentralizedConfig(seed))
		if err != nil {
			t.Fatalf("trial %d (n=%d d=%.1f src=%d): %v", trial, n, d, src, err)
		}
		res, err := radio.ExecuteSchedule(g, src, sched, radio.StrictInformed)
		if err != nil {
			t.Fatalf("trial %d: replay error: %v", trial, err)
		}
		if !res.Completed {
			t.Fatalf("trial %d: incomplete %d/%d (%s)", trial, res.Informed, n, trace)
		}
		ecc := graph.Eccentricity(g, src)
		if res.Rounds < ecc {
			t.Fatalf("trial %d: %d rounds below eccentricity %d", trial, res.Rounds, ecc)
		}
		if bound := CentralizedBound(n, d); float64(sched.Len()) > 20*bound {
			t.Fatalf("trial %d: schedule %d rounds vs bound %.1f", trial, sched.Len(), bound)
		}
		if trace.Total() != sched.Len() {
			t.Fatalf("trial %d: trace/sched mismatch", trial)
		}
	}
}

// Property sweep for the distributed protocol: completion within the
// budget across random configurations, and informedAt ≥ BFS distance.
func TestDistributedProtocolPropertySweep(t *testing.T) {
	rng := xrand.New(777)
	for trial := 0; trial < 12; trial++ {
		n := 300 + rng.Intn(1700)
		lnN := math.Log(float64(n))
		d := (2 + 3*rng.Float64()) * lnN
		g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), rng, 50)
		if !ok {
			continue
		}
		src := rng.Int31n(int32(n))
		res := radio.RunProtocol(g, src, NewDistributedProtocol(n, d), MaxRoundsFor(n), rng)
		if !res.Completed {
			t.Fatalf("trial %d (n=%d d=%.1f): incomplete %d/%d", trial, n, d, res.Informed, n)
		}
		dist := graph.Distances(g, src)
		for v, at := range res.InformedAt {
			if at < dist[v] {
				t.Fatalf("trial %d: node %d informed at %d before distance %d", trial, v, at, dist[v])
			}
		}
	}
}

// The schedule sets of the selective phase must be pairwise disjoint when
// the config demands it — verified against the actual schedule output.
func TestSelectivePhaseDisjointnessProperty(t *testing.T) {
	const n = 3000
	d := 2 * math.Log(n)
	g := mustConnected(t, n, d, 555)
	cfg := DefaultCentralizedConfig(555)
	sched, trace, err := BuildCentralizedSchedule(g, 0, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo := trace.TreeRounds + trace.KickoffRounds
	hi := lo + trace.SelectiveRounds
	seen := make(map[int32]int)
	for r := lo; r < hi; r++ {
		for _, v := range sched.Sets[r] {
			if prev, dup := seen[v]; dup {
				t.Fatalf("node %d in selective rounds %d and %d", v, prev, r)
			}
			seen[v] = r
		}
	}
}

// Seeds must fully determine distributed runs end to end.
func TestDistributedRunDeterministicProperty(t *testing.T) {
	const n = 1000
	d := 2 * math.Log(n)
	g := mustConnected(t, n, d, 888)
	a := radio.RunProtocol(g, 0, NewDistributedProtocol(n, d), MaxRoundsFor(n), xrand.New(31))
	b := radio.RunProtocol(g, 0, NewDistributedProtocol(n, d), MaxRoundsFor(n), xrand.New(31))
	if a.Rounds != b.Rounds || a.Informed != b.Informed {
		t.Fatal("same seed, different outcome")
	}
	for i := range a.InformedAt {
		if a.InformedAt[i] != b.InformedAt[i] {
			t.Fatal("same seed, different informedAt")
		}
	}
}
