package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// DistributedProtocol is the randomized fully distributed broadcasting
// protocol of §3.2 (Theorem 7). Nodes know only n and the expected average
// degree d = pn (derived from p, which the model gives every node), plus
// the shared round counter.
//
// Protocol:
//
//   - Non-selective rounds 1 … D₁ = ⌊log n / log d⌋ − 1: every informed
//     node transmits.
//   - Round D₁+1 (the "n/d^D-selective" round): informed nodes transmit
//     with probability KickProb, sized so that about n/d of the ≈ d^D₁
//     phase-one informed nodes transmit.
//   - Rounds > D₁+1 (1/d-selective): informed nodes transmit with
//     probability Selectivity (= 1/d).
//
// A modelling note recorded in DESIGN.md: the paper's protocol STATEMENT
// says only "node[s] informed in one of the rounds 1,…,D" transmit in the
// selective rounds, but its PROOF of Theorem 7 samples each selective set
// "uniformly at random" from I(t′), "the set of informed nodes at time
// t′". The literal statement strands finite instances (a vertex whose
// neighbours were all informed after round D₁+1 can never hear the
// message), so this implementation follows the proof: the selective pool
// is all informed nodes. Set RestrictPool to get the literal reading —
// ablated in experiment E12 — optionally with SafetyRound as an escape
// hatch that re-widens the pool after that round.
type DistributedProtocol struct {
	N           int     // number of nodes (known to all nodes)
	Degree      float64 // expected average degree d = pn (known to all nodes)
	D1          int     // number of non-selective rounds
	KickProb    float64 // transmit probability in round D1+1
	Selectivity float64 // transmit probability in selective rounds
	// RestrictPool limits selective-round transmitters to nodes informed
	// in rounds <= PoolCutoff (the paper's literal protocol statement).
	RestrictPool bool
	PoolCutoff   int32
	// SafetyRound, when RestrictPool is set and SafetyRound > 0, re-widens
	// the pool to all informed nodes from that round on.
	SafetyRound int
}

// NewDistributedProtocol returns the protocol in the configuration used by
// the proof of Theorem 7 (selective pool = all informed nodes).
func NewDistributedProtocol(n int, d float64) *DistributedProtocol {
	return newDistributedCommon(n, d)
}

// NewRestrictedPoolProtocol returns the literal protocol statement of
// §3.2: only nodes informed during the first D₁+1 rounds transmit in the
// selective rounds, with a safety valve that re-widens the pool after
// D₁ + 1 + ⌈8 ln n⌉ rounds so finite runs cannot strand forever.
func NewRestrictedPoolProtocol(n int, d float64) *DistributedProtocol {
	p := newDistributedCommon(n, d)
	p.RestrictPool = true
	p.SafetyRound = p.D1 + 1 + int(math.Ceil(8*math.Log(float64(n)+2)))
	return p
}

func newDistributedCommon(n int, d float64) *DistributedProtocol {
	if d < 2 {
		d = 2
	}
	d1 := 0
	if n > 2 {
		d1 = int(math.Floor(math.Log(float64(n))/math.Log(d))) - 1
	}
	if d1 < 0 {
		d1 = 0
	}
	// Expected phase-one informed population is ≈ d^D₁; the kick round
	// should select ≈ n/d transmitters out of it.
	expInformed := math.Pow(d, float64(d1))
	kick := (float64(n) / d) / math.Max(expInformed, 1)
	if kick > 1 {
		kick = 1
	}
	return &DistributedProtocol{
		N:           n,
		Degree:      d,
		D1:          d1,
		KickProb:    kick,
		Selectivity: 1 / d,
		PoolCutoff:  int32(d1 + 1),
	}
}

// Transmit implements radio.Protocol.
func (p *DistributedProtocol) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	switch {
	case round <= p.D1:
		return true
	case round == p.D1+1:
		return rng.Bernoulli(p.KickProb)
	default:
		if p.RestrictPool {
			inPool := informedAt <= p.PoolCutoff
			if p.SafetyRound > 0 && round >= p.SafetyRound {
				inPool = true
			}
			if !inPool {
				return false
			}
		}
		return rng.Bernoulli(p.Selectivity)
	}
}

// RoundProb implements radio.UniformProtocol: every round of the protocol
// is uniform — flooding (q = 1), the kick-off round (q = KickProb) and
// the selective rounds (q = Selectivity), with the eligible cohort
// restricted to the phase-one informed pool under RestrictPool. The
// engine therefore simulates the protocol with one binomial draw per
// round instead of one Bernoulli per informed node; the per-round
// transmitter distribution is exactly that of Transmit.
func (p *DistributedProtocol) RoundProb(round int) (q float64, cohort radio.Cohort, ok bool) {
	switch {
	case round <= p.D1:
		return 1, radio.AllInformed, true
	case round == p.D1+1:
		return p.KickProb, radio.AllInformed, true
	default:
		if p.RestrictPool && !(p.SafetyRound > 0 && round >= p.SafetyRound) {
			return p.Selectivity, radio.InformedBy(p.PoolCutoff), true
		}
		return p.Selectivity, radio.AllInformed, true
	}
}

// MaxRoundsFor returns a generous simulation budget for the distributed
// protocol on n nodes: well beyond the Θ(ln n) completion bound, so an
// incomplete run signals a real protocol failure rather than a tight cap.
func MaxRoundsFor(n int) int {
	if n < 2 {
		return 8
	}
	return 64*int(math.Ceil(math.Log(float64(n)))) + 64
}

// RunDistributed is a convenience wrapper: it runs the default protocol on
// g from src and returns the radio result.
func RunDistributed(g *graph.Graph, src int32, d float64, rng *xrand.Rand) radio.Result {
	p := NewDistributedProtocol(g.N(), d)
	return radio.RunProtocol(g, src, p, MaxRoundsFor(g.N()), rng)
}
