package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// mustConnected draws a connected G(n,p) or fails the test.
func mustConnected(t testing.TB, n int, d float64, seed uint64) *graph.Graph {
	t.Helper()
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(seed), 50)
	if !ok {
		t.Fatalf("no connected G(%d, d=%v) sample", n, d)
	}
	return g
}

func TestCentralizedScheduleCompletesOnGnp(t *testing.T) {
	for _, tc := range []struct {
		n    int
		d    float64
		seed uint64
	}{
		{500, 14, 1},
		{2000, 16, 2},
		{2000, 60, 3},
		{5000, 18, 4},
	} {
		g := mustConnected(t, tc.n, tc.d, tc.seed)
		sched, trace, err := BuildCentralizedSchedule(g, 0, tc.d, DefaultCentralizedConfig(tc.seed))
		if err != nil {
			t.Fatalf("n=%d d=%v: %v", tc.n, tc.d, err)
		}
		res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
		if err != nil {
			t.Fatalf("replay failed: %v", err)
		}
		if !res.Completed {
			t.Fatalf("n=%d d=%v: replay incomplete %d/%d (%s)", tc.n, tc.d, res.Informed, tc.n, trace)
		}
		if res.Rounds != sched.Len() && res.Rounds > sched.Len() {
			t.Fatalf("replay rounds %d > schedule %d", res.Rounds, sched.Len())
		}
		// The schedule must respect the Theorem 5 shape: within a modest
		// constant of ln n/ln d + ln d.
		bound := CentralizedBound(tc.n, tc.d)
		if float64(sched.Len()) > 12*bound {
			t.Fatalf("n=%d d=%v: schedule %d rounds, %vx the bound %v (%s)",
				tc.n, tc.d, sched.Len(), float64(sched.Len())/bound, bound, trace)
		}
	}
}

func TestCentralizedScheduleDeterministicPerSeed(t *testing.T) {
	g := mustConnected(t, 1000, 15, 7)
	s1, _, err := BuildCentralizedSchedule(g, 0, 15, DefaultCentralizedConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := BuildCentralizedSchedule(g, 0, 15, DefaultCentralizedConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Len() != s2.Len() {
		t.Fatalf("same seed, different lengths: %d vs %d", s1.Len(), s2.Len())
	}
	for r := range s1.Sets {
		if len(s1.Sets[r]) != len(s2.Sets[r]) {
			t.Fatalf("round %d differs", r)
		}
		for i := range s1.Sets[r] {
			if s1.Sets[r][i] != s2.Sets[r][i] {
				t.Fatalf("round %d differs at %d", r, i)
			}
		}
	}
}

func TestCentralizedScheduleStrictValidity(t *testing.T) {
	// Every transmitter must be informed when it transmits; StrictInformed
	// replay already enforces this, so a nil error is the assertion.
	g := mustConnected(t, 1500, 20, 9)
	sched, _, err := BuildCentralizedSchedule(g, 3, 20, DefaultCentralizedConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := radio.ExecuteSchedule(g, 3, sched, radio.StrictInformed); err != nil {
		t.Fatalf("schedule uses uninformed transmitter: %v", err)
	}
}

func TestCentralizedTraceAccounting(t *testing.T) {
	g := mustConnected(t, 1000, 15, 11)
	sched, trace, err := BuildCentralizedSchedule(g, 0, 15, DefaultCentralizedConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Total() != sched.Len() {
		t.Fatalf("trace total %d != schedule length %d (%s)", trace.Total(), sched.Len(), trace)
	}
	if trace.DStar < 0 || trace.DStar >= trace.Layers {
		t.Fatalf("bad D* in trace: %s", trace)
	}
}

func TestCentralizedOnDenseGraph(t *testing.T) {
	// p constant: diameter 2, schedule should be O(ln d) = O(ln n).
	const n = 800
	g := gen.Gnp(n, 0.5, xrand.New(13))
	if !graph.IsConnected(g) {
		t.Fatal("G(800, 1/2) disconnected?!")
	}
	sched, trace, err := BuildCentralizedSchedule(g, 0, 0.5*n, DefaultCentralizedConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("dense replay failed: %v %+v (%s)", err, res.Informed, trace)
	}
	if float64(sched.Len()) > 10*math.Log(n) {
		t.Fatalf("dense schedule too long: %d rounds (%s)", sched.Len(), trace)
	}
}

func TestCentralizedOnPath(t *testing.T) {
	// Degenerate topology far from G(n,p): must still complete, bounded by
	// O(n) rounds.
	g := gen.Path(60)
	sched, _, err := BuildCentralizedSchedule(g, 0, 2, DefaultCentralizedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("path schedule failed: %v, informed %d", err, res.Informed)
	}
}

func TestCentralizedOnStarAndComplete(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"star":     gen.Star(50),
		"complete": gen.Complete(40),
	} {
		sched, _, err := BuildCentralizedSchedule(g, 0, float64(g.Degrees().Mean), DefaultCentralizedConfig(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
		if err != nil || !res.Completed {
			t.Fatalf("%s failed: %v informed=%d", name, err, res.Informed)
		}
	}
}

func TestCentralizedDisconnectedError(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	if _, _, err := BuildCentralizedSchedule(g, 0, 2, DefaultCentralizedConfig(1)); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestCentralizedEmptyGraphError(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	if _, _, err := BuildCentralizedSchedule(g, 0, 2, DefaultCentralizedConfig(1)); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestCentralizedSingleVertex(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	sched, _, err := BuildCentralizedSchedule(g, 0, 2, DefaultCentralizedConfig(1))
	if err != nil {
		t.Fatalf("single vertex: %v", err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("single-vertex broadcast: %v %+v", err, res)
	}
}

func TestCentralizedAblationNoCoverFinish(t *testing.T) {
	// Without the cover finish the schedule still completes (random
	// selective rounds eventually hit everything) but is typically longer.
	g := mustConnected(t, 1500, 15, 17)
	cfg := DefaultCentralizedConfig(17)
	cfg.CoverFinish = false
	sched, _, err := BuildCentralizedSchedule(g, 0, 15, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("no-cover-finish schedule failed: %v informed=%d", err, res.Informed)
	}
}

func TestCentralizedAblationNonDisjoint(t *testing.T) {
	g := mustConnected(t, 1500, 15, 19)
	cfg := DefaultCentralizedConfig(19)
	cfg.DisjointSelectiveSets = false
	sched, _, err := BuildCentralizedSchedule(g, 0, 15, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("non-disjoint schedule failed: %v informed=%d", err, res.Informed)
	}
}

func TestCentralizedScalesLogarithmically(t *testing.T) {
	// Doubling n four times must not double the schedule length when the
	// degree tracks 2 ln n — growth should be ~ln n/ln d + ln d, i.e. slow.
	lengths := make(map[int]int)
	for _, n := range []int{1000, 4000, 16000} {
		d := 2 * math.Log(float64(n))
		g := mustConnected(t, n, d, uint64(n))
		sched, _, err := BuildCentralizedSchedule(g, 0, d, DefaultCentralizedConfig(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		lengths[n] = sched.Len()
	}
	if lengths[16000] > 3*lengths[1000] {
		t.Fatalf("schedule grows too fast: %v", lengths)
	}
}

func TestRoundRobinSchedule(t *testing.T) {
	g := mustConnected(t, 300, 10, 23)
	s := RoundRobinSchedule(g, 0)
	res, err := radio.ExecuteSchedule(g, 0, s, radio.StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("round-robin incomplete: %d/%d", res.Informed, 300)
	}
	if s.Len() != 300 {
		t.Fatalf("round-robin length %d, want n", s.Len())
	}
}

func TestRoundRobinOnPath(t *testing.T) {
	g := gen.Path(20)
	s := RoundRobinSchedule(g, 0)
	res, err := radio.ExecuteSchedule(g, 0, s, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("round-robin on path: %v %+v", err, res.Informed)
	}
}

func TestBounds(t *testing.T) {
	if b := CentralizedBound(1000, 10); math.Abs(b-(math.Log(1000)/math.Log(10)+math.Log(10))) > 1e-12 {
		t.Fatalf("CentralizedBound = %v", b)
	}
	if !math.IsInf(CentralizedBound(1, 10), 1) || !math.IsInf(CentralizedBound(100, 1), 1) {
		t.Fatal("degenerate CentralizedBound not +Inf")
	}
	if b := DistributedBound(1000); math.Abs(b-math.Log(1000)) > 1e-12 {
		t.Fatalf("DistributedBound = %v", b)
	}
	if DistributedBound(1) != 1 {
		t.Fatal("DistributedBound(1) != 1")
	}
	if b := DenseBound(1000, 0.5); math.Abs(b-math.Log(1000)/math.Log(2)) > 1e-12 {
		t.Fatalf("DenseBound = %v", b)
	}
	if !math.IsInf(DenseBound(1000, 0), 1) {
		t.Fatal("DenseBound f=0 not +Inf")
	}
}

func TestOptimalDegree(t *testing.T) {
	n := 100000
	dOpt := OptimalDegree(n)
	// The bound at d* must not exceed the bound at d*/4 or 4d*.
	at := func(d float64) float64 { return CentralizedBound(n, d) }
	if at(dOpt) > at(dOpt/4)+1e-9 || at(dOpt) > at(4*dOpt)+1e-9 {
		t.Fatalf("OptimalDegree %v is not a local minimum: %v %v %v",
			dOpt, at(dOpt/4), at(dOpt), at(4*dOpt))
	}
	if OptimalDegree(2) != 2 {
		t.Fatal("OptimalDegree(2) != 2")
	}
}

func BenchmarkBuildCentralizedSchedule(b *testing.B) {
	const n = 10000
	d := 2 * math.Log(n)
	g := mustConnected(b, n, d, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BuildCentralizedSchedule(g, 0, d, DefaultCentralizedConfig(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCentralizedTraceString(t *testing.T) {
	tr := CentralizedTrace{TreeRounds: 3, KickoffRounds: 1, SelectiveRounds: 9,
		CoverRounds: 2, BackwardRounds: 1, DStar: 3, Layers: 6}
	s := tr.String()
	for _, want := range []string{"tree=3", "kick=1", "selective=9", "cover=2",
		"backward=1", "D*=3", "layers=6", "total=16"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace string %q missing %q", s, want)
		}
	}
}

func TestCentralizedMaxRoundsExceeded(t *testing.T) {
	// An absurdly small round budget must produce an error, not a hang.
	g := mustConnected(t, 500, 12, 99)
	cfg := DefaultCentralizedConfig(99)
	cfg.MaxRounds = 1
	if _, _, err := BuildCentralizedSchedule(g, 0, 12, cfg); err == nil {
		t.Fatal("budget of 1 round accepted")
	}
}

func TestDeepestInformedFrontier(t *testing.T) {
	g := gen.Path(5)
	e := radio.NewEngine(g, 0, radio.StrictInformed)
	if _, err := e.Round([]int32{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Round([]int32{1}); err != nil {
		t.Fatal(err)
	}
	dist := graph.Distances(g, 0)
	frontier := deepestInformedFrontier(e, dist, nil)
	if len(frontier) != 1 || frontier[0] != 2 {
		t.Fatalf("frontier = %v, want [2]", frontier)
	}
}

func TestCentralizedZeroConfigDefaults(t *testing.T) {
	// A zero SelectiveC/Selectivity must fall back to sane defaults
	// rather than dividing by zero or looping.
	g := mustConnected(t, 600, 12, 101)
	cfg := CentralizedConfig{CoverFinish: true, DisjointSelectiveSets: true, Seed: 101}
	sched, _, err := BuildCentralizedSchedule(g, 0, 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("zero-config schedule failed: %v informed=%d", err, res.Informed)
	}
}

func TestCentralizedTinyDegreeClamped(t *testing.T) {
	// d < 2 is clamped; the builder must still work on a denser graph
	// described with a bogus degree hint.
	g := mustConnected(t, 400, 12, 103)
	sched, _, err := BuildCentralizedSchedule(g, 0, 0.5, DefaultCentralizedConfig(103))
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("clamped-degree schedule failed: %v informed=%d", err, res.Informed)
	}
}
