package core

// LayeredCoverSchedule: the classical deterministic centralized approach
// for KNOWN arbitrary topologies (the Chlamtac–Weinstein lineage that
// §1.2's centralized results refine): advance the broadcast one BFS layer
// at a time; within a layer, pick a greedy set cover of the next layer
// from the informed layer, then let the cover transmit one element per
// round (trivially collision-free). Rounds = Σ per-layer cover sizes —
// O(D · Δ) worst case, far above the paper's bound on random graphs,
// which is exactly why it serves as the deterministic centralized
// baseline in experiment E15.

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/radio"
)

// BuildLayeredCoverSchedule returns the layer-by-layer greedy-set-cover
// schedule for broadcasting from src on the connected graph g.
func BuildLayeredCoverSchedule(g *graph.Graph, src int32) (*radio.Schedule, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("core: %w: empty graph", radio.ErrScheduleMismatch)
	}
	dist := graph.Distances(g, src)
	for v, dv := range dist {
		if dv == graph.Unreachable {
			return nil, fmt.Errorf("core: %w: vertex %d unreachable from %d", radio.ErrScheduleMismatch, v, src)
		}
	}
	layers := graph.Layers(g, src)
	sched := &radio.Schedule{}
	for i := 0; i+1 < len(layers); i++ {
		cover := greedySetCover(g, layers[i], layers[i+1])
		for _, v := range cover {
			sched.Sets = append(sched.Sets, []int32{v})
		}
	}
	return sched, nil
}

// greedySetCover covers target from candidates: repeatedly choose the
// candidate adjacent to the most uncovered targets. Returns the chosen
// candidates in selection order.
func greedySetCover(g *graph.Graph, candidates, target []int32) []int32 {
	uncovered := make(map[int32]bool, len(target))
	for _, w := range target {
		uncovered[w] = true
	}
	// gain-sorted greedy with lazy re-evaluation.
	type cand struct {
		v    int32
		gain int
	}
	heap := make([]cand, 0, len(candidates))
	gainOf := func(v int32) int {
		c := 0
		for _, w := range g.Neighbors(v) {
			if uncovered[w] {
				c++
			}
		}
		return c
	}
	for _, v := range candidates {
		if gn := gainOf(v); gn > 0 {
			heap = append(heap, cand{v, gn})
		}
	}
	sort.Slice(heap, func(i, j int) bool { return heap[i].gain > heap[j].gain })
	var chosen []int32
	for len(uncovered) > 0 && len(heap) > 0 {
		// Lazy greedy: re-evaluate the head; if it is still at least as
		// good as the next entry's stale bound, take it.
		top := heap[0]
		fresh := gainOf(top.v)
		if fresh == 0 {
			heap = heap[1:]
			continue
		}
		if len(heap) > 1 && fresh < heap[1].gain {
			heap[0].gain = fresh
			sort.Slice(heap, func(i, j int) bool { return heap[i].gain > heap[j].gain })
			continue
		}
		chosen = append(chosen, top.v)
		for _, w := range g.Neighbors(top.v) {
			delete(uncovered, w)
		}
		heap = heap[1:]
	}
	return chosen
}

// CompressSchedule post-optimises a valid schedule: it removes
// transmitters whose removal does not reduce the set of newly informed
// nodes in their round (collision victims and redundant repeats), then
// drops rounds that inform nobody, re-simulating as it goes so the result
// is valid by construction. Compression never increases the round count.
//
// This is an engineering pass, not part of the paper's algorithm; the E12
// notes record how much slack it finds in the Theorem 5 schedules.
func CompressSchedule(g *graph.Graph, src int32, s *radio.Schedule) (*radio.Schedule, error) {
	e := radio.NewEngine(g, src, radio.StrictInformed)
	out := &radio.Schedule{}
	for _, set := range s.Sets {
		if e.Done() {
			break
		}
		kept := compressRound(g, e, set)
		if len(kept) == 0 {
			continue // round informed nobody even before compression
		}
		owned := make([]int32, len(kept))
		copy(owned, kept)
		out.Sets = append(out.Sets, owned)
		if _, err := e.Round(owned); err != nil {
			return nil, err
		}
	}
	if !e.Done() {
		// The input schedule did not complete either; compression
		// preserves whatever coverage it had.
		res, err := radio.ExecuteSchedule(g, src, s, radio.StrictInformed)
		if err != nil {
			return nil, err
		}
		if res.Completed {
			return nil, fmt.Errorf("core: %w: compression lost coverage (internal error)", radio.ErrScheduleMismatch)
		}
	}
	return out, nil
}

// compressRound returns a subset of set whose newly-informed node SET is
// a superset of the full set's, on the current engine state: transmitters
// are dropped greedily only when removal loses no receiver (it can gain
// un-collided ones). The superset requirement — rather than a count
// comparison — is what keeps every later round of the original schedule
// valid: the compressed run's informed set dominates the original's at
// every prefix, and "exactly one transmitting neighbour" does not depend
// on informedness, so every originally-informed node stays informed.
func compressRound(g *graph.Graph, e *radio.Engine, set []int32) []int32 {
	// newlySet computes the receivers of a candidate transmit set without
	// touching e.
	newlySet := func(tx []int32) map[int32]bool {
		inTx := make(map[int32]bool, len(tx))
		for _, v := range tx {
			inTx[v] = true
		}
		hits := make(map[int32]int)
		for v := range inTx {
			for _, w := range g.Neighbors(v) {
				hits[w]++
			}
		}
		out := make(map[int32]bool)
		for w, h := range hits {
			if h == 1 && !inTx[w] && !e.Informed(w) {
				out[w] = true
			}
		}
		return out
	}
	superset := func(big, small map[int32]bool) bool {
		for w := range small {
			if !big[w] {
				return false
			}
		}
		return true
	}
	current := make([]int32, 0, len(set))
	seen := make(map[int32]bool, len(set))
	for _, v := range set {
		if !seen[v] && e.Informed(v) {
			seen[v] = true
			current = append(current, v)
		}
	}
	base := newlySet(current)
	if len(base) == 0 {
		return nil
	}
	// Greedy elimination, one pass.
	for i := 0; i < len(current); {
		trial := make([]int32, 0, len(current)-1)
		trial = append(trial, current[:i]...)
		trial = append(trial, current[i+1:]...)
		if got := newlySet(trial); superset(got, base) {
			current = trial
			base = got
		} else {
			i++
		}
	}
	return current
}
