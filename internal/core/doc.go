// Package core implements the paper's two broadcasting algorithms — the
// centralized schedule of Theorem 5 and the fully distributed randomized
// protocol of Theorem 7 — together with the theoretical round bounds they
// are measured against.
//
// # Centralized broadcasting (§3.1)
//
// With full topology knowledge, BuildCentralizedSchedule constructs an
// explicit transmit schedule in five phases, following the paper's
// algorithm:
//
//  1. Tree phase: for rounds i = 1, 2, …, nodes at even distance from the
//     source transmit in odd rounds and nodes at odd distance transmit in
//     even rounds (the parity ping-pong of the proof of Theorem 5). Because
//     the early BFS layers of G(n,p) are almost trees (Lemma 3), this
//     informs nearly all of each small layer, one layer per round, up to
//     the first layer D* of size Ω(n/d).
//  2. Kick-off: one round in which Θ(n/d) informed vertices of layer D*
//     transmit, informing Θ(n) vertices of the following (giant) layer.
//  3. Selective phase: ≈ c·ln d rounds, each transmitting a uniformly
//     random 1/d-fraction of the informed nodes, pairwise disjoint from
//     the sets used in earlier selective rounds. By Lemma 4 each such
//     round informs a constant fraction of the remaining uninformed nodes,
//     so after c·ln d rounds only O(n/d²) remain.
//  4. Independent-cover finish: rounds built from explicit independent
//     covers (every remaining uninformed node hears exactly one
//     transmitter), constructed greedily from the uninformed nodes'
//     informed neighbourhoods (Lemma 4, second statement).
//  5. Backward sweep: the stragglers in the small layers T_i, i < D*, are
//     informed layer by layer (descending i) with independent covers from
//     the already-informed deeper layers.
//
// The schedule length is O(ln n / ln d + ln d) w.h.p. (Theorem 5), which
// experiment E1/E2 verifies empirically against CentralizedBound.
//
// # Distributed broadcasting (§3.2)
//
// DistributedProtocol implements the randomized protocol verbatim: nodes
// know only n and the expected degree d = pn.
//
//   - Rounds 1 … D₁ = ⌊log n / log d⌋ − 1: every informed node transmits
//     (non-selective rounds).
//   - Round D₁+1: informed nodes transmit with probability chosen to
//     select ≈ n/d of them (the paper's "n/d^D-selective" round).
//   - Rounds > D₁+1: every node informed during the first D₁+1 rounds
//     transmits with probability 1/d (1/d-selective rounds).
//
// Completion takes O(ln n) rounds w.h.p. (Theorem 7; experiment E4).
// The selective pool follows the PROOF of Theorem 7 (a 1/d-fraction of all
// currently informed nodes); the paper's literal protocol statement, which
// restricts the pool to first-phase nodes and strands finite instances, is
// available as NewRestrictedPoolProtocol and ablated in E12.
package core
