package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

func TestLayeredCoverScheduleCompletes(t *testing.T) {
	const n = 1000
	d := 2 * math.Log(n)
	g := mustConnected(t, n, d, 31)
	sched, err := BuildLayeredCoverSchedule(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("layered cover incomplete: %d/%d", res.Informed, n)
	}
	// Single transmitters per round: no collisions at all.
	if res.Stats.Collisions != 0 {
		t.Fatalf("layered cover had %d collisions", res.Stats.Collisions)
	}
}

func TestLayeredCoverScheduleMuchLongerThanPaper(t *testing.T) {
	// The baseline's point: deterministic layer-cover pays Θ(n ln d / d)
	// rounds on G(n,p), far above the paper's O(ln n/ln d + ln d).
	const n = 2000
	d := 2 * math.Log(n)
	g := mustConnected(t, n, d, 37)
	layered, err := BuildLayeredCoverSchedule(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	paper, _, err := BuildCentralizedSchedule(g, 0, d, DefaultCentralizedConfig(37))
	if err != nil {
		t.Fatal(err)
	}
	if layered.Len() < 5*paper.Len() {
		t.Fatalf("layered (%d) not clearly worse than paper (%d)", layered.Len(), paper.Len())
	}
}

func TestLayeredCoverOnPathAndStar(t *testing.T) {
	g := gen.Path(20)
	sched, err := BuildLayeredCoverSchedule(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("path: %v %d", err, res.Informed)
	}
	if sched.Len() != 19 {
		t.Fatalf("path schedule %d rounds, want 19", sched.Len())
	}
	sched, err = BuildLayeredCoverSchedule(gen.Star(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Len() != 1 {
		t.Fatalf("star schedule %d rounds, want 1", sched.Len())
	}
}

func TestLayeredCoverErrors(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	if _, err := BuildLayeredCoverSchedule(b.Build(), 0); err == nil {
		t.Fatal("disconnected accepted")
	}
	if _, err := BuildLayeredCoverSchedule(graph.NewBuilder(0).Build(), 0); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestGreedySetCoverCoversEverything(t *testing.T) {
	rng := xrand.New(41)
	const n = 400
	g := gen.Gnp(n, 0.05, rng)
	var candidates, target []int32
	for v := int32(0); v < n; v++ {
		if v < n/2 {
			candidates = append(candidates, v)
		} else {
			target = append(target, v)
		}
	}
	cover := greedySetCover(g, candidates, target)
	covered := make(map[int32]bool)
	for _, v := range cover {
		for _, w := range g.Neighbors(v) {
			covered[w] = true
		}
	}
	for _, w := range target {
		coverable := false
		for _, nb := range g.Neighbors(w) {
			if nb < int32(n/2) {
				coverable = true
				break
			}
		}
		if coverable && !covered[w] {
			t.Fatalf("coverable target %d left uncovered", w)
		}
	}
}

func TestCompressScheduleShortensAndStaysValid(t *testing.T) {
	const n = 2000
	d := 2 * math.Log(n)
	g := mustConnected(t, n, d, 43)
	sched, _, err := BuildCentralizedSchedule(g, 0, d, DefaultCentralizedConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := CompressSchedule(g, 0, sched)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Len() > sched.Len() {
		t.Fatalf("compression lengthened the schedule: %d -> %d", sched.Len(), comp.Len())
	}
	res, err := radio.ExecuteSchedule(g, 0, comp, radio.StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("compressed schedule incomplete: %d/%d", res.Informed, n)
	}
	// Transmission budget should shrink (fewer redundant transmitters).
	orig, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Transmissions > orig.Stats.Transmissions {
		t.Fatalf("compression increased transmissions: %d -> %d",
			orig.Stats.Transmissions, res.Stats.Transmissions)
	}
}

func TestCompressRoundRobinCollapses(t *testing.T) {
	// Round-robin schedules are full of useless rounds once everyone is
	// informed locally; compression must strip them hard.
	const n = 300
	g := mustConnected(t, n, 12, 47)
	rr := RoundRobinSchedule(g, 0)
	comp, err := CompressSchedule(g, 0, rr)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= rr.Len() {
		t.Fatalf("compression did not shrink round robin: %d -> %d", rr.Len(), comp.Len())
	}
	res, err := radio.ExecuteSchedule(g, 0, comp, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("compressed RR invalid: %v %d", err, res.Informed)
	}
}

func TestCompressPreservesIncompleteness(t *testing.T) {
	g := gen.Path(10)
	short := &radio.Schedule{Sets: [][]int32{{0}, {1}}}
	comp, err := CompressSchedule(g, 0, short)
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, comp, radio.StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 3 {
		t.Fatalf("compressed partial schedule informs %d, want 3", res.Informed)
	}
}

func BenchmarkLayeredCoverSchedule(b *testing.B) {
	const n = 5000
	d := 2 * math.Log(n)
	g := mustConnected(b, n, d, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildLayeredCoverSchedule(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Differential property test: on random graphs and random (messy, partly
// redundant) schedules, compression must preserve the informed-set
// trajectory's final coverage exactly when the input completes, and the
// compressed run must always dominate the original run's informed set.
func TestCompressScheduleDifferentialProperty(t *testing.T) {
	rng := xrand.New(2024)
	for trial := 0; trial < 25; trial++ {
		n := 30 + rng.Intn(120)
		g, _, ok := gen.ConnectedGnp(n, 0.15+0.3*rng.Float64(), rng, 50)
		if !ok {
			continue
		}
		// Build a messy but valid schedule: simulate flood-ish rounds,
		// recording random subsets of the currently informed set.
		e := radio.NewEngine(g, 0, radio.StrictInformed)
		sched := &radio.Schedule{}
		for r := 0; r < 6*n && !e.Done(); r++ {
			var pool []int32
			pool = e.AppendInformed(pool)
			set := rng.SubsetEach(nil, pool, 0.3+0.5*rng.Float64())
			if len(set) == 0 {
				set = append(set, pool[rng.Intn(len(pool))])
			}
			sched.Sets = append(sched.Sets, set)
			if _, err := e.Round(set); err != nil {
				t.Fatal(err)
			}
		}
		if !e.Done() {
			continue // unlucky random schedule; property only on complete inputs
		}
		orig, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := CompressSchedule(g, 0, sched)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := radio.ExecuteSchedule(g, 0, comp, radio.StrictInformed)
		if err != nil {
			t.Fatalf("trial %d: compressed replay: %v", trial, err)
		}
		if !res.Completed {
			t.Fatalf("trial %d: compression lost completion", trial)
		}
		if res.Rounds > orig.Rounds {
			t.Fatalf("trial %d: compression lengthened %d -> %d", trial, orig.Rounds, res.Rounds)
		}
		// Domination: every node informed no later than in the original.
		for v := range res.InformedAt {
			if res.InformedAt[v] > orig.InformedAt[v] {
				t.Fatalf("trial %d: node %d informed later after compression (%d > %d)",
					trial, v, res.InformedAt[v], orig.InformedAt[v])
			}
		}
	}
}
