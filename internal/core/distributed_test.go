package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/radio"
	"repro/internal/xrand"
)

func TestDistributedProtocolCompletes(t *testing.T) {
	for _, tc := range []struct {
		n    int
		d    float64
		seed uint64
	}{
		{500, 14, 1},
		{2000, 16, 2},
		{2000, 50, 3},
		{8000, 20, 4},
	} {
		g := mustConnected(t, tc.n, tc.d, tc.seed)
		rng := xrand.New(tc.seed + 100)
		res := RunDistributed(g, 0, tc.d, rng)
		if !res.Completed {
			t.Fatalf("n=%d d=%v: incomplete %d/%d after %d rounds",
				tc.n, tc.d, res.Informed, tc.n, res.Rounds)
		}
		bound := DistributedBound(tc.n)
		if float64(res.Rounds) > 20*bound {
			t.Fatalf("n=%d d=%v: %d rounds, %.1fx the ln n bound",
				tc.n, tc.d, res.Rounds, float64(res.Rounds)/bound)
		}
	}
}

func TestDistributedPhaseStructure(t *testing.T) {
	p := NewDistributedProtocol(100000, 20)
	// D1 = floor(ln 1e5 / ln 20) - 1 = floor(11.51/3.00) - 1 = 2.
	if p.D1 != 2 {
		t.Fatalf("D1 = %d, want 2", p.D1)
	}
	if p.Selectivity != 1.0/20 {
		t.Fatalf("selectivity = %v", p.Selectivity)
	}
	if p.RestrictPool {
		t.Fatal("default protocol must use the proof's unrestricted pool")
	}
	if p.KickProb <= 0 || p.KickProb > 1 {
		t.Fatalf("kick prob = %v", p.KickProb)
	}
	rng := xrand.New(1)
	// Non-selective rounds: always transmit.
	for round := 1; round <= p.D1; round++ {
		if !p.Transmit(0, round, 0, rng) {
			t.Fatalf("round %d should be non-selective", round)
		}
	}
	// Selective rounds: every informed node transmits at roughly rate 1/d,
	// regardless of when it was informed.
	for _, informedAt := range []int32{0, int32(p.D1 + 5)} {
		hits := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			if p.Transmit(0, p.D1+2, informedAt, rng) {
				hits++
			}
		}
		rate := float64(hits) / trials
		if math.Abs(rate-p.Selectivity) > 0.01 {
			t.Fatalf("selective rate %v for informedAt=%d, want ~%v", rate, informedAt, p.Selectivity)
		}
	}
}

func TestRestrictedPoolProtocol(t *testing.T) {
	p := NewRestrictedPoolProtocol(1000, 10)
	if !p.RestrictPool {
		t.Fatal("restricted protocol lost its restriction")
	}
	if p.PoolCutoff != int32(p.D1+1) {
		t.Fatalf("pool cutoff = %d", p.PoolCutoff)
	}
	if p.SafetyRound <= p.D1+1 {
		t.Fatalf("safety round %d not after kick", p.SafetyRound)
	}
	rng := xrand.New(2)
	late := int32(p.D1 + 5)
	// Before the safety round, late-informed nodes are silent.
	for i := 0; i < 200; i++ {
		if p.Transmit(0, p.SafetyRound-1, late, rng) {
			t.Fatal("late node transmitted before safety round")
		}
	}
	// After the safety round they may transmit.
	hits := 0
	for i := 0; i < 5000; i++ {
		if p.Transmit(0, p.SafetyRound, late, rng) {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("safety valve never opened the pool")
	}
}

func TestLiteralRestrictedProtocolStrandsNobodyWithValveOff(t *testing.T) {
	// With the valve disabled, the literal protocol statement keeps the
	// pool restricted forever; late nodes never transmit.
	p := NewRestrictedPoolProtocol(1000, 10)
	p.SafetyRound = 0
	rng := xrand.New(3)
	late := int32(p.D1 + 5)
	for i := 0; i < 1000; i++ {
		if p.Transmit(0, 10000+i, late, rng) {
			t.Fatal("literal protocol let a late node transmit")
		}
	}
}

func TestRestrictedPoolCompletesViaSafetyValve(t *testing.T) {
	const n = 2000
	d := 2 * math.Log(n)
	g := mustConnected(t, n, d, 33)
	rng := xrand.New(34)
	p := NewRestrictedPoolProtocol(n, d)
	res := radio.RunProtocol(g, 0, p, MaxRoundsFor(n), rng)
	if !res.Completed {
		t.Fatalf("restricted protocol incomplete even with valve: %d/%d", res.Informed, n)
	}
}

func TestDistributedScalesLogarithmically(t *testing.T) {
	// Median completion round over a few trials should grow like ln n.
	median := func(n int, d float64) int {
		g := mustConnected(t, n, d, uint64(n)*7)
		times := make([]int, 0, 5)
		for trial := 0; trial < 5; trial++ {
			rng := xrand.New(uint64(n)*31 + uint64(trial))
			times = append(times, radio.BroadcastTime(g, 0, NewDistributedProtocol(n, d), MaxRoundsFor(n), rng))
		}
		// insertion sort of 5 elements
		for i := 1; i < len(times); i++ {
			for j := i; j > 0 && times[j] < times[j-1]; j-- {
				times[j], times[j-1] = times[j-1], times[j]
			}
		}
		return times[len(times)/2]
	}
	t1k := median(1000, 2*math.Log(1000))
	t16k := median(16000, 2*math.Log(16000))
	// ln 16000 / ln 1000 = 1.40; allow generous slack but reject linear
	// growth (16x) and even sqrt growth (4x).
	if float64(t16k) > 3.0*float64(t1k) {
		t.Fatalf("distributed rounds grew from %d to %d (x%.1f); want ~ln n growth",
			t1k, t16k, float64(t16k)/float64(t1k))
	}
}

func TestDistributedOnDenseGraph(t *testing.T) {
	const n = 800
	g := gen.Gnp(n, 0.3, xrand.New(5))
	rng := xrand.New(6)
	res := RunDistributed(g, 0, 0.3*n, rng)
	if !res.Completed {
		t.Fatalf("dense distributed incomplete: %d/%d", res.Informed, n)
	}
}

func TestDistributedSmallGraphs(t *testing.T) {
	// Degenerate sizes must not panic and must finish on trivial graphs.
	for _, n := range []int{1, 2, 3, 5} {
		g := gen.Complete(n)
		rng := xrand.New(uint64(n))
		res := RunDistributed(g, 0, float64(n-1), rng)
		if !res.Completed {
			t.Fatalf("K_%d incomplete", n)
		}
	}
}

func TestMaxRoundsFor(t *testing.T) {
	if MaxRoundsFor(1) < 1 {
		t.Fatal("MaxRoundsFor(1) too small")
	}
	if MaxRoundsFor(1000) <= int(math.Log(1000)) {
		t.Fatal("budget not beyond the bound")
	}
	if MaxRoundsFor(1000000) >= 10000 {
		t.Fatal("budget unreasonably large")
	}
}

func TestKickProbClamped(t *testing.T) {
	// Small n with large d drives D1 to 0 and the raw kick estimate above
	// 1; it must be clamped.
	p := NewDistributedProtocol(10, 8)
	if p.KickProb > 1 || p.KickProb <= 0 {
		t.Fatalf("kick prob %v out of (0,1]", p.KickProb)
	}
}

func BenchmarkDistributedBroadcast(b *testing.B) {
	const n = 10000
	d := 2 * math.Log(n)
	g := mustConnected(b, n, d, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := xrand.New(uint64(i))
		res := RunDistributed(g, 0, d, rng)
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}
