package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/structure"
	"repro/internal/xrand"
)

// CentralizedConfig tunes the Theorem 5 schedule builder. The zero value is
// not valid; use DefaultCentralizedConfig.
type CentralizedConfig struct {
	// SelectiveC is the constant c in the c·ln d budget of 1/d-selective
	// rounds (phase 3). The builder is adaptive and may stop the phase
	// early once the uninformed set is small, but never exceeds this
	// budget before switching to explicit covers.
	SelectiveC float64
	// DisjointSelectiveSets enforces the proof's requirement that the
	// random transmit sets of the selective phase be pairwise disjoint.
	// Disabling it is ablation A1 of experiment E12.
	DisjointSelectiveSets bool
	// CoverFinish enables the independent-cover finishing phases (4 and
	// 5). Disabling it (ablation A2) continues random selective rounds
	// instead and typically wastes Θ(ln n) extra rounds on the tail.
	CoverFinish bool
	// Selectivity is the per-round sampling fraction of the selective
	// phase; the paper uses 1/d (set <= 0 for that default). Ablation A3
	// tries 1/√d and 1/d².
	Selectivity float64
	// MaxRounds aborts the builder if the schedule exceeds this many
	// rounds (a safety net against mis-configuration; the builder fails
	// rather than loop forever). Zero means an automatic generous budget.
	MaxRounds int
	// Seed drives the randomized choices (kick-off sample, selective
	// sets).
	Seed uint64
}

// DefaultCentralizedConfig returns the faithful configuration of the
// paper's algorithm.
func DefaultCentralizedConfig(seed uint64) CentralizedConfig {
	return CentralizedConfig{
		SelectiveC:            3,
		DisjointSelectiveSets: true,
		CoverFinish:           true,
		Selectivity:           0, // 1/d
		Seed:                  seed,
	}
}

// CentralizedTrace reports how many rounds each phase of the schedule
// used; the sum equals the schedule length.
type CentralizedTrace struct {
	TreeRounds      int // phase 1: parity ping-pong over small layers
	KickoffRounds   int // phase 2: Θ(n/d) sample from layer D*
	SelectiveRounds int // phase 3: random 1/d-fractions
	CoverRounds     int // phase 4: independent covers on the giant layers
	BackwardRounds  int // phase 5: descending sweep over small layers
	DStar           int // boundary layer index
	Layers          int // eccentricity of the source + 1
}

// Total returns the schedule length implied by the trace.
func (t CentralizedTrace) Total() int {
	return t.TreeRounds + t.KickoffRounds + t.SelectiveRounds + t.CoverRounds + t.BackwardRounds
}

// String renders a compact per-phase summary.
func (t CentralizedTrace) String() string {
	return fmt.Sprintf("tree=%d kick=%d selective=%d cover=%d backward=%d (D*=%d, layers=%d, total=%d)",
		t.TreeRounds, t.KickoffRounds, t.SelectiveRounds, t.CoverRounds, t.BackwardRounds,
		t.DStar, t.Layers, t.Total())
}

// BuildCentralizedSchedule constructs the Theorem 5 broadcast schedule for
// source src on the connected graph g with expected average degree d (the
// caller passes d = pn; it is used only for phase sizing, so a degree
// estimate from the graph itself also works). The returned schedule, when
// executed under radio.StrictInformed, informs every vertex reachable from
// src.
//
// The builder is adaptive: it simulates the radio model while emitting
// rounds, so the schedule is valid by construction. It returns an error if
// the graph is disconnected from src or the round budget is exhausted.
func BuildCentralizedSchedule(g *graph.Graph, src int32, d float64, cfg CentralizedConfig) (*radio.Schedule, CentralizedTrace, error) {
	n := g.N()
	var trace CentralizedTrace
	if n == 0 {
		return &radio.Schedule{}, trace, fmt.Errorf("core: %w: empty graph", radio.ErrScheduleMismatch)
	}
	if d < 2 {
		d = 2
	}
	if cfg.Selectivity <= 0 {
		cfg.Selectivity = 1 / d
	}
	if cfg.SelectiveC <= 0 {
		cfg.SelectiveC = 3
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		// Generous: the result should be Θ(ln n/ln d + ln d); allow a large
		// multiple plus slack for tiny graphs.
		maxRounds = 64*int(math.Ceil(CentralizedBound(n, d))) + 256
	}
	rng := xrand.New(cfg.Seed)

	dist := graph.Distances(g, src)
	for v, dv := range dist {
		if dv == graph.Unreachable {
			return nil, trace, fmt.Errorf("core: %w: vertex %d unreachable from source %d", radio.ErrScheduleMismatch, v, src)
		}
	}
	layers := graph.Layers(g, src)
	trace.Layers = len(layers)

	// D*: the first layer of size >= n/d (the paper's first layer with
	// Ω(n/d) nodes); if none, the graph is shallow/sparse and the tree
	// phase alone spans all layers.
	dStar := len(layers) - 1
	for i, layer := range layers {
		if float64(len(layer)) >= float64(n)/d {
			dStar = i
			break
		}
	}
	trace.DStar = dStar

	e := radio.NewEngine(g, src, radio.StrictInformed)
	sched := &radio.Schedule{}
	// Builder-owned scratch, allocated O(n) once and reused by every cover
	// round: mark is epoch-stamped (mark[v] == epoch means "v is in the
	// current candidate set"), so clearing it between rounds is a counter
	// increment instead of a map allocation.
	sc := &coverScratch{mark: make([]int32, n)}
	emit := func(set []int32, phase *int) error {
		owned := make([]int32, len(set))
		copy(owned, set)
		sched.Sets = append(sched.Sets, owned)
		if _, err := e.Round(owned); err != nil {
			return err
		}
		*phase++
		if e.RoundCount() > maxRounds {
			return fmt.Errorf("core: %w: schedule exceeded %d rounds (%s)", radio.ErrScheduleMismatch, maxRounds, trace)
		}
		return nil
	}

	// --- Phase 1: parity ping-pong over the small layers -----------------
	// Round i transmits the informed nodes at distances j < dStar with
	// j ≡ i-1 (mod 2): round 1 transmits the source (j = 0), round 2 the
	// odd layers, and so on. We run until layer dStar's informed count
	// stops growing and at least dStar rounds have passed.
	var buf []int32
	for i := 1; i <= dStar || (dStar == 0 && i == 1); i++ {
		par := int32((i - 1) % 2)
		buf = buf[:0]
		for v := 0; v < n; v++ {
			if dist[v] < int32(dStar) && dist[v]%2 == par && e.Informed(int32(v)) {
				buf = append(buf, int32(v))
			}
		}
		if len(buf) == 0 && dStar > 0 {
			continue
		}
		if err := emit(buf, &trace.TreeRounds); err != nil {
			return nil, trace, err
		}
		if e.Done() {
			return sched, trace, nil
		}
	}
	// Special case: dStar == 0 means even layer 0 … impossible except for
	// n/d <= 1; the single emitted round (source) already handled it.

	// --- Phase 2: kick-off round from layer D* ---------------------------
	// Θ(n/d) informed vertices of T_{D*} transmit.
	if dStar > 0 && !e.Done() {
		informedDStar := buf[:0]
		for _, v := range layers[dStar] {
			if e.Informed(v) {
				informedDStar = append(informedDStar, v)
			}
		}
		if len(informedDStar) == 0 {
			// The parity phase never reached T_{D*} (possible on extreme
			// inputs). Fall back to transmitting the deepest informed
			// frontier until T_{D*} is seeded.
			for !e.Done() {
				sc.frontier = deepestInformedFrontier(e, dist, sc.frontier[:0])
				frontier := sc.frontier
				if len(frontier) == 0 {
					return nil, trace, fmt.Errorf("core: %w: stalled before kick-off (%s)", radio.ErrScheduleMismatch, trace)
				}
				if err := emit(frontier, &trace.TreeRounds); err != nil {
					return nil, trace, err
				}
				informedDStar = informedDStar[:0]
				for _, v := range layers[dStar] {
					if e.Informed(v) {
						informedDStar = append(informedDStar, v)
					}
				}
				if len(informedDStar) > 0 {
					break
				}
			}
		}
		if !e.Done() && len(informedDStar) > 0 {
			want := int(math.Ceil(float64(n) / d))
			set := informedDStar
			if len(set) > want {
				idx := rng.Sample(len(set), want)
				sample := make([]int32, want)
				for i, j := range idx {
					sample[i] = set[j]
				}
				set = sample
			}
			if err := emit(set, &trace.KickoffRounds); err != nil {
				return nil, trace, err
			}
		}
	}

	// --- Phase 3: 1/d-selective random rounds ----------------------------
	budget := int(math.Ceil(cfg.SelectiveC * math.Log(d)))
	used := make([]bool, n) // members of earlier selective sets
	tailThreshold := int(math.Ceil(float64(n) / (d * d)))
	if tailThreshold < 8 {
		tailThreshold = 8
	}
	pool := make([]int32, 0, n)
	for r := 0; r < budget && !e.Done(); r++ {
		uninformed := n - e.InformedCount()
		if cfg.CoverFinish && uninformed <= tailThreshold {
			break // the cover finish handles the tail more cheaply
		}
		pool = pool[:0]
		for v := 0; v < n; v++ {
			if e.Informed(int32(v)) && !(cfg.DisjointSelectiveSets && used[v]) {
				pool = append(pool, int32(v))
			}
		}
		set := rng.SubsetEach(sc.set[:0], pool, cfg.Selectivity)
		if len(set) == 0 && len(pool) > 0 {
			set = append(set, pool[rng.Intn(len(pool))])
		}
		sc.set = set
		for _, v := range set {
			used[v] = true
		}
		if err := emit(set, &trace.SelectiveRounds); err != nil {
			return nil, trace, err
		}
	}

	// --- Phases 4+5: independent-cover finish ----------------------------
	if cfg.CoverFinish {
		// Phase 4: uninformed nodes in the giant region (distance >= dStar).
		if err := coverUntilInformed(e, emit, &trace.CoverRounds,
			func(v int32) bool { return dist[v] >= int32(dStar) }, rng, sc); err != nil {
			return nil, trace, err
		}
		// Phase 5: backward sweep over the small layers, descending.
		for i := dStar - 1; i >= 1 && !e.Done(); i-- {
			di := int32(i)
			if err := coverUntilInformed(e, emit, &trace.BackwardRounds,
				func(v int32) bool { return dist[v] == di }, rng, sc); err != nil {
				return nil, trace, err
			}
		}
		// Safety: anything still uninformed (shouldn't happen).
		if err := coverUntilInformed(e, emit, &trace.BackwardRounds,
			func(v int32) bool { return true }, rng, sc); err != nil {
			return nil, trace, err
		}
	} else {
		// Ablation A2: keep doing selective rounds until done.
		for !e.Done() {
			pool = pool[:0]
			for v := 0; v < n; v++ {
				if e.Informed(int32(v)) {
					pool = append(pool, int32(v))
				}
			}
			set := rng.SubsetEach(sc.set[:0], pool, cfg.Selectivity)
			if len(set) == 0 {
				set = append(set, pool[rng.Intn(len(pool))])
			}
			sc.set = set
			if err := emit(set, &trace.SelectiveRounds); err != nil {
				return nil, trace, err
			}
		}
	}

	if !e.Done() {
		return nil, trace, fmt.Errorf("core: %w: schedule incomplete: %d/%d informed (%s)",
			radio.ErrScheduleMismatch, e.InformedCount(), n, trace)
	}
	return sched, trace, nil
}

// coverScratch is the schedule builder's reusable working memory: one O(n)
// allocation up front instead of per-round maps and slices. mark doubles as
// the candidate-membership set — mark[v] == epoch means v is a candidate of
// the current cover round — so "clearing" it is epoch++ (O(1)), and
// coverSampleRate can test membership without building its own set.
type coverScratch struct {
	mark     []int32
	epoch    int32
	targets  []int32
	cands    []int32
	set      []int32
	frontier []int32
}

// deepestInformedFrontier returns the informed vertices at the maximum
// distance among informed vertices, appended to buf (single O(n) pass, no
// allocation once buf has capacity).
func deepestInformedFrontier(e *radio.Engine, dist []int32, buf []int32) []int32 {
	maxD := int32(-1)
	out := buf
	for v := range dist {
		if !e.Informed(int32(v)) {
			continue
		}
		if dist[v] > maxD {
			maxD = dist[v]
			out = out[:0]
		}
		if dist[v] == maxD {
			out = append(out, int32(v))
		}
	}
	return out
}

// coverUntilInformed emits independent-cover rounds until every vertex
// selected by want is informed. Each round's transmitter set is a greedy
// independent cover of the remaining targets built from their informed
// neighbours, so every target with at least one informed neighbour is
// guaranteed progress; targets with no informed neighbour yet are retried
// after the rest of the graph advances. All working memory lives in sc;
// steady-state rounds allocate nothing. The candidate list is built in
// target order, first-seen order preserved, so the rng draws (and hence the
// schedule) are identical to the earlier map-based implementation.
func coverUntilInformed(e *radio.Engine, emit func([]int32, *int) error, counter *int,
	want func(int32) bool, rng *xrand.Rand, sc *coverScratch) error {
	g := e.Graph()
	n := g.N()
	for {
		targets := sc.targets[:0]
		for v := 0; v < n; v++ {
			if !e.Informed(int32(v)) && want(int32(v)) {
				targets = append(targets, int32(v))
			}
		}
		sc.targets = targets
		if len(targets) == 0 {
			return nil
		}
		// Candidate transmitters: informed neighbours of the targets.
		sc.epoch++
		cands := sc.cands[:0]
		reachable := false
		for _, y := range targets {
			for _, x := range g.Neighbors(y) {
				if e.Informed(x) {
					reachable = true
					if sc.mark[x] != sc.epoch {
						sc.mark[x] = sc.epoch
						cands = append(cands, x)
					}
				}
			}
		}
		sc.cands = cands
		if !reachable {
			// No informed neighbour anywhere: the caller's phase ordering
			// guarantees this cannot persist; make progress elsewhere by
			// letting a random informed vertex transmit. If that is
			// impossible the graph is disconnected (checked earlier).
			return fmt.Errorf("core: %w: cover targets unreachable from informed set", radio.ErrScheduleMismatch)
		}
		// For large target sets a randomized 1/deg cover is cheaper and
		// still informs a constant fraction; the greedy exact cover is
		// reserved for small tails.
		var set []int32
		if len(targets) > 64 {
			q := coverSampleRate(g, targets, sc)
			set = rng.SubsetEach(sc.set[:0], cands, q)
			if len(set) == 0 {
				set = append(set, cands[rng.Intn(len(cands))])
			}
			sc.set = set
		} else {
			c := structure.GreedyIndependentCover(g, cands, targets)
			set = c.Transmitters
			if len(set) == 0 {
				// Greedy could not make an independent choice (rare,
				// adversarial overlaps): transmit a single candidate; it
				// informs all its exclusive targets.
				set = append(set, cands[rng.Intn(len(cands))])
			}
		}
		if err := emit(set, counter); err != nil {
			return err
		}
	}
}

// coverSampleRate estimates a good Bernoulli rate for a randomized cover:
// 1 over the mean number of candidate-neighbours per target, clamped to
// (0, 1]. Candidate membership is read from sc.mark (stamped by the
// caller's candidate pass), so no set is built here.
func coverSampleRate(g *graph.Graph, targets []int32, sc *coverScratch) float64 {
	totalDeg := 0
	for _, y := range targets {
		for _, x := range g.Neighbors(y) {
			if sc.mark[x] == sc.epoch {
				totalDeg++
			}
		}
	}
	if totalDeg == 0 {
		return 1
	}
	mean := float64(totalDeg) / float64(len(targets))
	q := 1 / mean
	if q > 1 {
		q = 1
	}
	return q
}

// RoundRobinSchedule returns the trivial baseline schedule in which the
// informed frontier transmits one node per round in BFS order — correct on
// any graph but Θ(n) rounds long. Used as the naive centralized comparison
// in E3/E5.
func RoundRobinSchedule(g *graph.Graph, src int32) *radio.Schedule {
	layers := graph.Layers(g, src)
	s := &radio.Schedule{}
	for _, layer := range layers {
		for _, v := range layer {
			s.Sets = append(s.Sets, []int32{v})
		}
	}
	return s
}
