package core

import "math"

// CentralizedBound returns the paper's Theorem 5/6 round bound
// ln n / ln d + ln d (without the hidden constant). Measured centralized
// schedule lengths divided by this quantity should be bounded above and
// below by constants as n grows (experiments E1–E3).
func CentralizedBound(n int, d float64) float64 {
	if n < 2 || d <= 1 {
		return math.Inf(1)
	}
	return math.Log(float64(n))/math.Log(d) + math.Log(d)
}

// DistributedBound returns the Theorem 7/8 bound ln n (again without the
// constant). Measured distributed completion times divided by this value
// should be constant in n (experiment E4).
func DistributedBound(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log(float64(n))
}

// DenseBound returns the dense-regime bound ln n / ln(1/f) for graphs
// G(n, 1-f) discussed at the end of §3.1 (experiment E9).
func DenseBound(n int, f float64) float64 {
	if n < 2 || f <= 0 || f >= 1 {
		return math.Inf(1)
	}
	return math.Log(float64(n)) / math.Log(1/f)
}

// OptimalDegree returns the expected degree d* minimising the centralized
// bound ln n/ln d + ln d for a given n: the minimiser of g(x) = L/x + x
// with x = ln d and L = ln n is x = √L, so d* = exp(√(ln n)). The U-shape
// of experiment E2 should bottom out near this degree.
func OptimalDegree(n int) float64 {
	if n < 3 {
		return 2
	}
	return math.Exp(math.Sqrt(math.Log(float64(n))))
}
