package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/xrand"
)

func TestWelfordMatchesBatch(t *testing.T) {
	rng := xrand.New(11)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if w.N() != int64(len(xs)) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if m, bm := w.Mean(), Mean(xs); math.Abs(m-bm) > 1e-12 {
		t.Errorf("mean %v vs batch %v", m, bm)
	}
	if v, bv := w.Variance(), Variance(xs); math.Abs(v-bv) > 1e-9 {
		t.Errorf("variance %v vs batch %v", v, bv)
	}
	half := 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	if hw := w.CI95HalfWidth(); math.Abs(hw-half) > 1e-9 {
		t.Errorf("CI half-width %v vs batch %v", hw, half)
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) || !math.IsNaN(w.CI95HalfWidth()) {
		t.Error("empty Welford must be all-NaN")
	}
	w.Add(4)
	if w.Mean() != 4 {
		t.Errorf("single-element mean = %v, want 4", w.Mean())
	}
	if !math.IsNaN(w.Variance()) || !math.IsNaN(w.CI95HalfWidth()) {
		t.Error("single-element Welford dispersion must be NaN")
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := xrand.New(5)
	var all, a, b Welford
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Errorf("merged mean %v vs sequential %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("merged variance %v vs sequential %v", a.Variance(), all.Variance())
	}
	// Merging into/from empty accumulators is the identity.
	var empty Welford
	c := a
	c.Merge(empty)
	if c != a {
		t.Error("merging an empty accumulator changed the receiver")
	}
	empty.Merge(a)
	if empty != a {
		t.Error("merging into an empty accumulator must copy")
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(0, 0, 1.96)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("Wilson with zero trials must be NaN")
	}
	// Against the classic worked example: 10/100 at z=1.96 gives
	// approximately [0.0552, 0.1744].
	lo, hi = Wilson(10, 100, 1.96)
	if math.Abs(lo-0.0552) > 5e-4 || math.Abs(hi-0.1744) > 5e-4 {
		t.Errorf("Wilson(10,100) = [%v, %v], want about [0.0552, 0.1744]", lo, hi)
	}
	// Stays inside [0,1] even at the extremes, unlike the normal interval.
	lo, hi = Wilson(0, 20, 1.96)
	if lo != 0 || hi <= 0 || hi >= 1 {
		t.Errorf("Wilson(0,20) = [%v, %v], want [0, (0,1))", lo, hi)
	}
	lo, hi = Wilson(20, 20, 1.96)
	if hi != 1 || lo >= 1 || lo <= 0 {
		t.Errorf("Wilson(20,20) = [%v, %v], want ((0,1), 1]", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("Wilson with successes > trials must panic")
		}
	}()
	Wilson(5, 4, 1.96)
}

func TestP2SmallStreamsExact(t *testing.T) {
	e := NewP2(0.5)
	if !math.IsNaN(e.Value()) {
		t.Error("empty P2 must be NaN")
	}
	for _, x := range []float64{5, 1, 3} {
		e.Add(x)
	}
	if got := e.Value(); got != 3 {
		t.Errorf("P2 median of {5,1,3} = %v, want 3", got)
	}
	if e.Count() != 3 {
		t.Errorf("Count = %d, want 3", e.Count())
	}
}

func TestP2ApproximatesQuantiles(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		rng := xrand.New(42)
		e := NewP2(p)
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			e.Add(xs[i])
		}
		exact := Quantile(xs, p)
		got := e.Value()
		// P² on 20k unimodal samples lands well within a few percent of
		// the distribution scale.
		if math.Abs(got-exact) > 0.05 {
			t.Errorf("P2(%v) = %v, exact %v", p, got, exact)
		}
	}
}

func TestP2Deterministic(t *testing.T) {
	feed := func() float64 {
		rng := xrand.New(9)
		e := NewP2(0.9)
		for i := 0; i < 5000; i++ {
			e.Add(rng.Float64())
		}
		return e.Value()
	}
	if a, b := feed(), feed(); a != b {
		t.Errorf("P2 not deterministic: %v vs %v", a, b)
	}
}

func TestReservoir(t *testing.T) {
	r := NewReservoir(100, xrand.New(3))
	if !math.IsNaN(r.Quantile(0.5)) {
		t.Error("empty reservoir quantile must be NaN")
	}
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != 10000 {
		t.Fatalf("Seen = %d", r.Seen())
	}
	if len(r.Sample()) != 100 {
		t.Fatalf("sample size = %d, want 100", len(r.Sample()))
	}
	// The retained sample of a uniform stream should have a median within
	// a few hundred of the true median 5000 (binomial concentration).
	if m := r.Quantile(0.5); m < 3500 || m > 6500 {
		t.Errorf("reservoir median = %v, want near 5000", m)
	}
	// Deterministic for a fixed seed.
	r2 := NewReservoir(100, xrand.New(3))
	for i := 0; i < 10000; i++ {
		r2.Add(float64(i))
	}
	a, b := append([]float64(nil), r.Sample()...), append([]float64(nil), r2.Sample()...)
	sort.Float64s(a)
	sort.Float64s(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("reservoir not deterministic for fixed seed")
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if !math.IsNaN(Quantile(nil, q)) {
			t.Errorf("Quantile(nil, %v) must be NaN", q)
		}
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Errorf("Quantile([7], %v) = %v, want 7", q, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile with q > 1 must panic")
		}
	}()
	Quantile([]float64{1, 2}, 1.5)
}

func TestSummarizeEdgeCases(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("N = %d, want 0", s.N)
	}
	for name, v := range map[string]float64{
		"Mean": s.Mean, "StdDev": s.StdDev, "Min": s.Min, "Median": s.Median,
		"Max": s.Max, "P10": s.P10, "P90": s.P90, "CILow": s.CILow,
		"CIHigh": s.CIHigh, "MeanErrorHalfWide": s.MeanErrorHalfWide,
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty Summarize: %s = %v, want NaN", name, v)
		}
	}
	s = Summarize([]float64{3})
	if s.N != 1 {
		t.Errorf("N = %d, want 1", s.N)
	}
	for name, v := range map[string]float64{
		"Mean": s.Mean, "Min": s.Min, "Median": s.Median,
		"Max": s.Max, "P10": s.P10, "P90": s.P90,
	} {
		if v != 3 {
			t.Errorf("single-element Summarize: %s = %v, want 3", name, v)
		}
	}
	for name, v := range map[string]float64{
		"StdDev": s.StdDev, "CILow": s.CILow, "CIHigh": s.CIHigh,
		"MeanErrorHalfWide": s.MeanErrorHalfWide,
	} {
		if !math.IsNaN(v) {
			t.Errorf("single-element Summarize: %s = %v, want NaN", name, v)
		}
	}
}

func TestBootstrapCIEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		xs        []float64
		resamples int
		rng       *xrand.Rand
	}{
		{"empty input", nil, 100, xrand.New(1)},
		{"one resample", []float64{1, 2}, 1, xrand.New(1)},
		{"nil rng", []float64{1, 2}, 100, nil},
	}
	for _, c := range cases {
		lo, hi := BootstrapCI(c.xs, c.resamples, c.rng)
		if !math.IsNaN(lo) || !math.IsNaN(hi) {
			t.Errorf("%s: BootstrapCI = [%v, %v], want NaN", c.name, lo, hi)
		}
	}
	// A single-element sample only ever resamples itself: degenerate CI.
	lo, hi := BootstrapCI([]float64{4}, 50, xrand.New(1))
	if lo != 4 || hi != 4 {
		t.Errorf("single-element BootstrapCI = [%v, %v], want [4, 4]", lo, hi)
	}
}
