// Package stats provides the summary statistics and curve-fitting helpers
// used by the experiment harness: means, variances, quantiles, normal and
// bootstrap confidence intervals, and least-squares fits (linear and
// log–log) for checking the paper's asymptotic shapes against measured
// scaling curves.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator), or NaN
// for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics. Edge cases are part of the
// contract (see TestQuantileEdgeCases): empty input returns NaN for every
// q, a single-element sample returns that element for every q, and q
// outside [0,1] panics.
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted reads the q-th quantile off an already-sorted non-empty
// sample, so callers that need several quantiles (Summarize) sort once.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary aggregates the usual descriptive statistics of a sample.
type Summary struct {
	N                 int
	Mean, StdDev      float64
	Min, Median, Max  float64
	P10, P90          float64
	CILow, CIHigh     float64 // normal-approximation 95% CI of the mean
	MeanErrorHalfWide float64 // half-width of that CI
}

// Summarize computes a Summary. Edge cases are part of the contract (see
// TestSummarizeEdgeCases): for empty input every float field is NaN and
// N is 0; for a single element the location fields (Mean, Min, Median,
// Max, P10, P90) all equal that element while the dispersion fields
// (StdDev, CILow, CIHigh, MeanErrorHalfWide) are NaN.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		s.Mean, s.StdDev = math.NaN(), math.NaN()
		s.Min, s.Median, s.Max = math.NaN(), math.NaN(), math.NaN()
		s.P10, s.P90 = math.NaN(), math.NaN()
		s.CILow, s.CIHigh = math.NaN(), math.NaN()
		s.MeanErrorHalfWide = math.NaN()
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	// Sort once and read every order statistic off the sorted copy, instead
	// of letting each Quantile call copy and re-sort the sample.
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Median = quantileSorted(sorted, 0.5)
	s.Max = sorted[len(sorted)-1]
	s.P10 = quantileSorted(sorted, 0.10)
	s.P90 = quantileSorted(sorted, 0.90)
	if len(xs) >= 2 {
		half := 1.96 * s.StdDev / math.Sqrt(float64(len(xs)))
		s.MeanErrorHalfWide = half
		s.CILow = s.Mean - half
		s.CIHigh = s.Mean + half
	} else {
		s.MeanErrorHalfWide = math.NaN()
		s.CILow, s.CIHigh = math.NaN(), math.NaN()
	}
	return s
}

// BootstrapCI returns a percentile bootstrap 95% confidence interval for
// the mean using the given number of resamples. Edge cases are part of
// the contract (see TestBootstrapCIEdgeCases): empty input, fewer than
// two resamples, or a nil generator return (NaN, NaN) without drawing,
// and a single-element sample returns the degenerate interval (x, x).
func BootstrapCI(xs []float64, resamples int, rng *xrand.Rand) (lo, hi float64) {
	if len(xs) == 0 || resamples < 2 || rng == nil {
		return math.NaN(), math.NaN()
	}
	means := make([]float64, resamples)
	for r := range means {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	return Quantile(means, 0.025), Quantile(means, 0.975)
}

// LinearFit is a least-squares line y = Slope·x + Intercept with its
// coefficient of determination.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLinear fits y = a·x + b by ordinary least squares. It returns NaN
// fields for fewer than two points or zero x-variance.
func FitLinear(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLinear length mismatch")
	}
	if len(xs) < 2 {
		return LinearFit{math.NaN(), math.NaN(), math.NaN()}
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{math.NaN(), math.NaN(), math.NaN()}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit
}

// FitPowerLaw fits y = C·x^alpha by least squares in log–log space and
// returns (alpha, C, R²). All inputs must be positive.
func FitPowerLaw(xs, ys []float64) (alpha, c, r2 float64) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return math.NaN(), math.NaN(), math.NaN()
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	f := FitLinear(lx, ly)
	return f.Slope, math.Exp(f.Intercept), f.R2
}

// FitLogarithm fits y = a·ln(x) + b and returns the fit. Inputs x must be
// positive. Used to verify Θ(ln n) scaling claims: a good fit with stable
// slope across ranges supports the claim.
func FitLogarithm(xs, ys []float64) LinearFit {
	lx := make([]float64, len(xs))
	for i := range xs {
		if xs[i] <= 0 {
			return LinearFit{math.NaN(), math.NaN(), math.NaN()}
		}
		lx[i] = math.Log(xs[i])
	}
	return FitLinear(lx, ys)
}

// RatioSpread returns max/min of ys[i]/fs[i]: how far the measured values
// ys wander from a hypothesised shape fs across the sweep. A bounded
// spread (say < 3) over a wide range is the finite-size analogue of
// "ys = Θ(fs)".
func RatioSpread(ys, fs []float64) float64 {
	if len(ys) != len(fs) || len(ys) == 0 {
		return math.NaN()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range ys {
		if fs[i] == 0 {
			return math.Inf(1)
		}
		r := ys[i] / fs[i]
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return hi / lo
}

// Ints converts an int slice to float64 for the statistics helpers.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// ChiSquareUniform computes the chi-square statistic of observed counts
// against the uniform distribution over len(counts) buckets, returning
// the statistic and the degrees of freedom. The caller compares against a
// critical value (for df large, the statistic is ~Normal(df, 2df), so
// values above df + 5·sqrt(2·df) are suspicious at any practical level).
func ChiSquareUniform(counts []int) (chi2 float64, df int) {
	k := len(counts)
	if k < 2 {
		return math.NaN(), 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN(), k - 1
	}
	expected := float64(total) / float64(k)
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2, k - 1
}

// ChiSquareLooksUniform reports whether the observed counts are plausibly
// uniform: the statistic is within mean + sigmas standard deviations of
// the chi-square distribution's mean (df) under the normal approximation.
func ChiSquareLooksUniform(counts []int, sigmas float64) bool {
	chi2, df := ChiSquareUniform(counts)
	if math.IsNaN(chi2) {
		return false
	}
	return chi2 <= float64(df)+sigmas*math.Sqrt(2*float64(df))
}
