package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); !almostEqual(v, 32.0/7, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
	if sd := StdDev(xs); !almostEqual(sd, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestMeanEmptyNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) not NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of singleton not NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("min = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("max = %v", q)
	}
	if q := Median(xs); q != 3 {
		t.Fatalf("median = %v", q)
	}
	// Interpolation: 0.25 quantile of [1..5] = 2.
	if q := Quantile(xs, 0.25); !almostEqual(q, 2, 1e-12) {
		t.Fatalf("q25 = %v", q)
	}
	if q := Quantile(xs, 0.1); !almostEqual(q, 1.4, 1e-12) {
		t.Fatalf("q10 = %v", q)
	}
	if q := Quantile([]float64{7}, 0.3); q != 7 {
		t.Fatalf("singleton quantile = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(1.5) did not panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || !almostEqual(s.Mean, 5.5, 1e-12) || !almostEqual(s.Median, 5.5, 1e-12) {
		t.Fatalf("summary %+v", s)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Fatalf("min/max %v %v", s.Min, s.Max)
	}
	if !(s.CILow < s.Mean && s.Mean < s.CIHigh) {
		t.Fatalf("CI does not bracket mean: %+v", s)
	}
	if !almostEqual(s.CIHigh-s.Mean, s.MeanErrorHalfWide, 1e-12) {
		t.Fatalf("half width inconsistent: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.Median) {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestBootstrapCIBracketsMean(t *testing.T) {
	rng := xrand.New(1)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 10
	}
	lo, hi := BootstrapCI(xs, 500, rng)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Fatalf("bootstrap CI [%v,%v] does not bracket mean %v", lo, hi, m)
	}
	if hi-lo > 2 {
		t.Fatalf("bootstrap CI too wide: [%v,%v]", lo, hi)
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	rng := xrand.New(2)
	if lo, hi := BootstrapCI(nil, 100, rng); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatal("empty bootstrap not NaN")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := FitLinear(xs, ys)
	if !almostEqual(f.Slope, 2, 1e-12) || !almostEqual(f.Intercept, 3, 1e-12) {
		t.Fatalf("fit %+v", f)
	}
	if !almostEqual(f.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := xrand.New(3)
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 3*x-7+rng.NormFloat64()*5)
	}
	f := FitLinear(xs, ys)
	if !almostEqual(f.Slope, 3, 0.05) {
		t.Fatalf("slope = %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	f := FitLinear([]float64{1}, []float64{2})
	if !math.IsNaN(f.Slope) {
		t.Fatal("single-point fit not NaN")
	}
	f = FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !math.IsNaN(f.Slope) {
		t.Fatal("zero-variance fit not NaN")
	}
	// Perfectly flat y: slope 0, R2 defined as 1.
	f = FitLinear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if f.Slope != 0 || f.R2 != 1 {
		t.Fatalf("flat fit %+v", f)
	}
}

func TestFitLinearMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	FitLinear([]float64{1}, []float64{1, 2})
}

func TestFitPowerLaw(t *testing.T) {
	// y = 5 x^1.7
	var xs, ys []float64
	for _, x := range []float64{1, 2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 5*math.Pow(x, 1.7))
	}
	alpha, c, r2 := FitPowerLaw(xs, ys)
	if !almostEqual(alpha, 1.7, 1e-9) || !almostEqual(c, 5, 1e-9) || !almostEqual(r2, 1, 1e-9) {
		t.Fatalf("power fit: alpha=%v c=%v r2=%v", alpha, c, r2)
	}
	// Non-positive input.
	alpha, _, _ = FitPowerLaw([]float64{0, 1}, []float64{1, 2})
	if !math.IsNaN(alpha) {
		t.Fatal("non-positive input not NaN")
	}
}

func TestFitLogarithm(t *testing.T) {
	// y = 4 ln x + 1
	var xs, ys []float64
	for _, x := range []float64{2, 4, 8, 16, 32, 64} {
		xs = append(xs, x)
		ys = append(ys, 4*math.Log(x)+1)
	}
	f := FitLogarithm(xs, ys)
	if !almostEqual(f.Slope, 4, 1e-9) || !almostEqual(f.Intercept, 1, 1e-9) {
		t.Fatalf("log fit %+v", f)
	}
	if f := FitLogarithm([]float64{-1, 2}, []float64{1, 2}); !math.IsNaN(f.Slope) {
		t.Fatal("negative x not NaN")
	}
}

func TestRatioSpread(t *testing.T) {
	ys := []float64{10, 20, 30}
	fs := []float64{5, 10, 15} // constant ratio 2
	if r := RatioSpread(ys, fs); !almostEqual(r, 1, 1e-12) {
		t.Fatalf("spread = %v", r)
	}
	ys = []float64{10, 40}
	fs = []float64{10, 10}
	if r := RatioSpread(ys, fs); !almostEqual(r, 4, 1e-12) {
		t.Fatalf("spread = %v", r)
	}
	if r := RatioSpread([]float64{1}, []float64{0}); !math.IsInf(r, 1) {
		t.Fatalf("zero denominator spread = %v", r)
	}
	if r := RatioSpread(nil, nil); !math.IsNaN(r) {
		t.Fatalf("empty spread = %v", r)
	}
}

func TestInts(t *testing.T) {
	got := Ints([]int{1, 2, 3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Ints = %v", got)
	}
}

// Property: mean is within [min, max]; quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		m := Mean(xs)
		return m >= Quantile(xs, 0)-1e-9 && m <= Quantile(xs, 1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareUniform(t *testing.T) {
	// Perfectly uniform counts: statistic 0.
	chi2, df := ChiSquareUniform([]int{10, 10, 10, 10})
	if chi2 != 0 || df != 3 {
		t.Fatalf("chi2=%v df=%d", chi2, df)
	}
	// Grossly non-uniform.
	chi2, _ = ChiSquareUniform([]int{100, 0, 0, 0})
	if chi2 < 100 {
		t.Fatalf("skewed chi2 = %v", chi2)
	}
	if !ChiSquareLooksUniform([]int{10, 12, 9, 11, 8}, 5) {
		t.Fatal("near-uniform rejected")
	}
	if ChiSquareLooksUniform([]int{1000, 1, 1, 1}, 5) {
		t.Fatal("skewed accepted")
	}
	// Degenerate inputs.
	if c, _ := ChiSquareUniform([]int{5}); !math.IsNaN(c) {
		t.Fatal("single bucket not NaN")
	}
	if c, _ := ChiSquareUniform([]int{0, 0}); !math.IsNaN(c) {
		t.Fatal("zero total not NaN")
	}
	if ChiSquareLooksUniform([]int{7}, 5) {
		t.Fatal("degenerate accepted")
	}
}
