package stats

// Online (streaming) aggregators for the campaign runner: Welford
// mean/variance, Wilson score intervals for success probabilities, the P²
// quantile estimator and reservoir sampling. All of them consume samples
// one at a time in O(1) memory, so a campaign can aggregate millions of
// trials per grid point without retaining raw sample slices.
//
// Determinism note: Welford and P² are exact functions of the *sequence*
// of observations, not just the multiset — feeding the same samples in a
// different order gives (slightly, for Welford; possibly more, for P²)
// different results. Callers that need results independent of scheduling
// (the campaign runner) must feed samples in a canonical order.

import (
	"math"
	"sort"

	"repro/internal/xrand"
)

// Welford accumulates count, mean and variance of a stream using
// Welford's numerically stable online algorithm. The zero value is an
// empty accumulator ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add consumes one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations consumed.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean, or NaN for an empty accumulator.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased sample variance (n-1 denominator), or NaN
// for fewer than two observations — matching Variance on a slice.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CI95HalfWidth returns the half-width of the normal-approximation 95%
// confidence interval of the mean, 1.96·s/√n, or NaN for fewer than two
// observations. It matches Summary.MeanErrorHalfWide on the same sample.
func (w *Welford) CI95HalfWidth() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return 1.96 * w.StdDev() / math.Sqrt(float64(w.n))
}

// Merge folds another accumulator into w (Chan et al. parallel update).
// Merging is exact in real arithmetic but, like Add, not bit-for-bit
// order-independent in floating point; order-sensitive callers should
// feed one accumulator sequentially instead.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// Wilson returns the Wilson score interval for a binomial success
// probability: successes out of trials, at critical value z (1.96 for
// 95%). Unlike the normal approximation it stays inside [0,1] and behaves
// sensibly at 0 and trials successes. It returns (NaN, NaN) for zero
// trials and panics for negative inputs or successes > trials.
func Wilson(successes, trials int, z float64) (lo, hi float64) {
	if successes < 0 || trials < 0 || successes > trials {
		panic("stats: Wilson requires 0 <= successes <= trials")
	}
	if trials == 0 {
		return math.NaN(), math.NaN()
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	// In real arithmetic the interval touches 0 exactly when successes is
	// 0 and 1 exactly when successes is trials; snap away the
	// floating-point wobble so those endpoints are exact.
	if successes == 0 {
		lo = 0
	}
	if successes == trials {
		hi = 1
	}
	return lo, hi
}

// P2 estimates a single quantile of a stream with the P² algorithm (Jain
// & Chlamtac 1985): five markers tracked with piecewise-parabolic
// interpolation, O(1) memory and update time. The first five observations
// are stored exactly, so Value is exact for streams of length <= 5.
type P2 struct {
	p     float64
	count int
	q     [5]float64 // marker heights
	n     [5]int     // marker positions (1-based)
	np    [5]float64 // desired positions
	dn    [5]float64 // desired-position increments
}

// NewP2 returns a P² estimator for the p-th quantile, 0 <= p <= 1.
func NewP2(p float64) *P2 {
	if p < 0 || p > 1 {
		panic("stats: NewP2 requires 0 <= p <= 1")
	}
	return &P2{p: p}
}

// Add consumes one observation.
func (e *P2) Add(x float64) {
	if e.count < 5 {
		e.q[e.count] = x
		e.count++
		if e.count == 5 {
			sort.Float64s(e.q[:])
			p := e.p
			e.n = [5]int{1, 2, 3, 4, 5}
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}
	// Locate the cell k such that q[k] <= x < q[k+1], extending the
	// extreme markers when x falls outside them.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.np {
		e.np[i] += e.dn[i]
	}
	e.count++
	// Adjust the three interior markers if they drifted off their desired
	// positions.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - float64(e.n[i])
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1
			if d < 0 {
				s = -1
			}
			qp := e.parabolic(i, s)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic marker prediction.
func (e *P2) parabolic(i, s int) float64 {
	ni := float64(e.n[i])
	nm := float64(e.n[i-1])
	np := float64(e.n[i+1])
	d := float64(s)
	return e.q[i] + d/(np-nm)*((ni-nm+d)*(e.q[i+1]-e.q[i])/(np-ni)+(np-ni-d)*(e.q[i]-e.q[i-1])/(ni-nm))
}

// linear is the fallback linear marker prediction.
func (e *P2) linear(i, s int) float64 {
	return e.q[i] + float64(s)*(e.q[i+s]-e.q[i])/float64(e.n[i+s]-e.n[i])
}

// Count returns the number of observations consumed.
func (e *P2) Count() int { return e.count }

// Value returns the current quantile estimate: NaN for an empty stream,
// the exact quantile (linear interpolation, as Quantile) for fewer than
// five observations, and the P² marker estimate afterwards.
func (e *P2) Value() float64 {
	if e.count == 0 {
		return math.NaN()
	}
	if e.count < 5 {
		s := make([]float64, e.count)
		copy(s, e.q[:e.count])
		sort.Float64s(s)
		return quantileSorted(s, e.p)
	}
	return e.q[2]
}

// Reservoir keeps a uniform random sample of up to k elements of a stream
// (Vitter's algorithm R) using the supplied deterministic generator, so
// approximate quantiles of arbitrarily long streams can be read off a
// bounded sample. The same (stream, seed) pair always retains the same
// sample.
type Reservoir struct {
	rng  *xrand.Rand
	buf  []float64
	seen int64
}

// NewReservoir returns a reservoir of capacity k. It panics for k <= 0 or
// a nil generator.
func NewReservoir(k int, rng *xrand.Rand) *Reservoir {
	if k <= 0 {
		panic("stats: NewReservoir requires k > 0")
	}
	if rng == nil {
		panic("stats: NewReservoir requires a generator")
	}
	return &Reservoir{rng: rng, buf: make([]float64, 0, k)}
}

// Add consumes one observation.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, x)
		return
	}
	if j := r.rng.Uint64n(uint64(r.seen)); j < uint64(cap(r.buf)) {
		r.buf[j] = x
	}
}

// Seen returns the number of observations consumed.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns the retained sample (not a copy; do not mutate).
func (r *Reservoir) Sample() []float64 { return r.buf }

// Quantile returns the q-th quantile of the retained sample, or NaN when
// the reservoir is empty.
func (r *Reservoir) Quantile(q float64) float64 {
	return Quantile(r.buf, q)
}
