// Package faults injects crash faults into radio networks: each node
// independently crashes with probability q before the broadcast starts
// (the standard static crash model). A crashed node neither transmits nor
// receives — in radio terms it simply vanishes from the topology, so a
// faulty run is an ordinary run on the induced subgraph of survivors.
//
// The paper assumes fault-free nodes; robustness to crashes is the kind
// of practical extension a deployment needs, and experiment E16 measures
// how the Theorem 7 protocol degrades: G(n,p) stays connected and
// logarithmic-diameter under constant-rate crashes (survivors form
// G(n', p) with n' ≈ (1−q)n), so completion time should barely move until
// q approaches 1 − δ ln n / (pn² )… in practice until the survivor degree
// d(1−q) hits the connectivity threshold.
package faults

import (
	"repro/internal/graph"
	"repro/internal/xrand"
)

// Scenario is a crash-fault configuration applied to a base graph.
type Scenario struct {
	// Survivors maps new vertex ids to original ids.
	Survivors []int32
	// Sub is the induced subgraph on the survivors.
	Sub *graph.Graph
	// SrcNew is the source's id in Sub, or -1 if the source crashed.
	SrcNew int32
	// CrashedCount is the number of crashed nodes.
	CrashedCount int
}

// Crash samples a crash pattern: every node except the protected source
// crashes independently with probability q. (Protecting the source keeps
// the broadcast well-defined; a crashed source is a trivial failure.)
//
// Degenerate rates are resolved deterministically and consume NO
// randomness: q <= 0 and NaN crash nobody, q >= 1 crashes everybody but
// the source. A NaN must not fall through to per-node Bernoulli draws —
// `Float64() < NaN` is false, so it would crash nobody while silently
// eating n−1 draws and perturbing every seeded result downstream.
func Crash(g *graph.Graph, src int32, q float64, rng *xrand.Rand) *Scenario {
	n := g.N()
	survivors := make([]int32, 0, n)
	switch {
	case q != q || q <= 0: // NaN or non-positive: nobody crashes
		for v := 0; v < n; v++ {
			survivors = append(survivors, int32(v))
		}
	case q >= 1: // everybody but the protected source crashes
		if src >= 0 && int(src) < n {
			survivors = append(survivors, src)
		}
	default:
		for v := 0; v < n; v++ {
			if int32(v) == src || !rng.Bernoulli(q) {
				survivors = append(survivors, int32(v))
			}
		}
	}
	sub, orig := g.Subgraph(survivors)
	sc := &Scenario{Survivors: orig, Sub: sub, SrcNew: -1, CrashedCount: n - len(survivors)}
	for i, v := range orig {
		if v == src {
			sc.SrcNew = int32(i)
			break
		}
	}
	return sc
}

// ReachableFromSource returns how many survivors (including the source)
// the source can reach in the faulted topology — the best any broadcast
// can do.
func (s *Scenario) ReachableFromSource() int {
	if s.SrcNew < 0 {
		return 0
	}
	dist := graph.Distances(s.Sub, s.SrcNew)
	count := 0
	for _, d := range dist {
		if d >= 0 {
			count++
		}
	}
	return count
}

// SurvivorFraction returns |survivors| / n of the base graph.
func (s *Scenario) SurvivorFraction(baseN int) float64 {
	if baseN == 0 {
		return 1
	}
	return float64(len(s.Survivors)) / float64(baseN)
}
