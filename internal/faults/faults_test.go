package faults

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

func TestCrashZeroKeepsEverything(t *testing.T) {
	g := gen.Complete(20)
	sc := Crash(g, 3, 0, xrand.New(1))
	if sc.CrashedCount != 0 || len(sc.Survivors) != 20 {
		t.Fatalf("q=0 crashed %d", sc.CrashedCount)
	}
	if sc.SrcNew < 0 || sc.Survivors[sc.SrcNew] != 3 {
		t.Fatal("source lost under q=0")
	}
	if sc.Sub.M() != g.M() {
		t.Fatal("edges lost under q=0")
	}
}

func TestCrashProtectsSource(t *testing.T) {
	g := gen.Complete(30)
	for seed := uint64(0); seed < 10; seed++ {
		sc := Crash(g, 7, 0.95, xrand.New(seed))
		if sc.SrcNew < 0 {
			t.Fatal("source crashed despite protection")
		}
		if sc.Survivors[sc.SrcNew] != 7 {
			t.Fatal("source id mangled")
		}
	}
}

func TestCrashRate(t *testing.T) {
	g := gen.Complete(2000)
	sc := Crash(g, 0, 0.3, xrand.New(2))
	frac := sc.SurvivorFraction(2000)
	if math.Abs(frac-0.7) > 0.05 {
		t.Fatalf("survivor fraction %v, want ~0.7", frac)
	}
}

func TestCrashAllButSource(t *testing.T) {
	g := gen.Complete(10)
	sc := Crash(g, 0, 1, xrand.New(3))
	if len(sc.Survivors) != 1 || sc.CrashedCount != 9 {
		t.Fatalf("q=1 survivors %v", sc.Survivors)
	}
	if sc.ReachableFromSource() != 1 {
		t.Fatalf("reachable = %d", sc.ReachableFromSource())
	}
}

func TestReachableFromSource(t *testing.T) {
	// Path 0-1-2-3-4: crash node 2 manually via a q=1 pattern is hard to
	// force; instead verify on an explicitly built scenario.
	g := gen.Path(5)
	sub, orig := g.Subgraph([]int32{0, 1, 3, 4})
	sc := &Scenario{Survivors: orig, Sub: sub, SrcNew: 0, CrashedCount: 1}
	if got := sc.ReachableFromSource(); got != 2 {
		t.Fatalf("reachable across the cut = %d, want 2 (nodes 0,1)", got)
	}
}

func TestBroadcastUnderFaultsCompletesOnReachable(t *testing.T) {
	const n = 2000
	d := 3 * math.Log(n)
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(4), 50)
	if !ok {
		t.Skip("no connected sample")
	}
	rng := xrand.New(5)
	for _, q := range []float64{0.1, 0.3, 0.5} {
		sc := Crash(g, 0, q, rng)
		reach := sc.ReachableFromSource()
		dSurv := d * (1 - q)
		p := core.NewDistributedProtocol(sc.Sub.N(), dSurv)
		res := radio.RunProtocol(sc.Sub, sc.SrcNew, p, 4*core.MaxRoundsFor(n), rng)
		if res.Informed < reach {
			t.Fatalf("q=%v: informed %d < reachable %d", q, res.Informed, reach)
		}
	}
}

func TestSurvivorFractionDegenerate(t *testing.T) {
	sc := &Scenario{Survivors: []int32{0}}
	if sc.SurvivorFraction(0) != 1 {
		t.Fatal("baseN=0 should report 1")
	}
}

func TestCrashDeterministic(t *testing.T) {
	g := gen.Gnp(500, 0.02, xrand.New(6))
	a := Crash(g, 0, 0.4, xrand.New(7))
	b := Crash(g, 0, 0.4, xrand.New(7))
	if len(a.Survivors) != len(b.Survivors) {
		t.Fatal("crash pattern not deterministic")
	}
	for i := range a.Survivors {
		if a.Survivors[i] != b.Survivors[i] {
			t.Fatal("crash pattern not deterministic")
		}
	}
}

func TestScenarioSubgraphIsInduced(t *testing.T) {
	g := gen.Complete(12)
	sc := Crash(g, 0, 0.5, xrand.New(8))
	k := sc.Sub.N()
	if sc.Sub.M() != k*(k-1)/2 {
		t.Fatalf("induced subgraph of K12 not complete: n=%d m=%d", k, sc.Sub.M())
	}
	_ = graph.IsConnected(sc.Sub)
}

// TestCrashDegenerateRates pins Crash's handling of crash rates outside
// (0,1): the scenario must be deterministic, consume no randomness, and
// never leave the protected source crashed. A NaN rate used to fall
// through to per-node Bernoulli draws — crashing nobody but consuming
// n−1 draws, so every seeded result downstream of the call shifted.
func TestCrashDegenerateRates(t *testing.T) {
	g := gen.Complete(10)
	cases := []struct {
		name      string
		q         float64
		survivors int
	}{
		{"negative", -1, 10},
		{"zero", 0, 10},
		{"one", 1, 1},
		{"above-one", 1.5, 1},
		{"+inf", math.Inf(1), 1},
		{"-inf", math.Inf(-1), 10},
		{"nan", math.NaN(), 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := xrand.New(42)
			sc := Crash(g, 3, tc.q, rng)
			if len(sc.Survivors) != tc.survivors {
				t.Fatalf("q=%v: %d survivors, want %d", tc.q, len(sc.Survivors), tc.survivors)
			}
			if sc.CrashedCount != 10-tc.survivors {
				t.Fatalf("q=%v: CrashedCount=%d, want %d", tc.q, sc.CrashedCount, 10-tc.survivors)
			}
			if sc.SrcNew < 0 || sc.Survivors[sc.SrcNew] != 3 {
				t.Fatalf("q=%v: protected source crashed (SrcNew=%d)", tc.q, sc.SrcNew)
			}
			// Degenerate rates must not consume randomness: the rng must
			// still produce the same first draw as a fresh one.
			if got, want := rng.Uint64(), xrand.New(42).Uint64(); got != want {
				t.Fatalf("q=%v consumed rng draws: next=%d, fresh=%d", tc.q, got, want)
			}
		})
	}
}

// TestCrashNaNMatchesZero pins NaN ≡ q=0 including the rng stream: a
// run whose crash rate parses to NaN must reproduce the q=0 run exactly.
func TestCrashNaNMatchesZero(t *testing.T) {
	g := gen.Gnp(30, 0.2, xrand.New(5))
	a := Crash(g, 0, math.NaN(), xrand.New(9))
	b := Crash(g, 0, 0, xrand.New(9))
	if len(a.Survivors) != len(b.Survivors) || a.CrashedCount != b.CrashedCount {
		t.Fatal("NaN crash rate diverges from q=0")
	}
}
