package repro

// Error taxonomy of the facade. Every error returned by Run / RunContext /
// BuildSchedule wraps exactly one of the exported sentinels below, so
// callers — in particular the HTTP serving layer (internal/serve), which
// maps them onto status codes — classify failures with errors.Is instead
// of matching message text:
//
//	res, err := repro.RunContext(ctx, g, src, repro.WithDegree(d))
//	switch {
//	case errors.Is(err, repro.ErrCanceled):           // partial res is valid
//	case errors.Is(err, repro.ErrConflictingOptions): // caller bug: bad options
//	case errors.Is(err, repro.ErrNoSuchSource):       // source outside [0, n)
//	case errors.Is(err, repro.ErrScheduleMismatch):   // schedule/instance mismatch
//	}
//
// Cancellation errors additionally wrap the context's cause, so
// errors.Is(err, context.Canceled) and errors.Is(err, context.DeadlineExceeded)
// keep working alongside ErrCanceled.

import (
	"errors"

	"repro/internal/radio"
)

// ErrConflictingOptions marks a Run/RunContext call whose options are
// mutually exclusive or invalid: WithProtocol+WithDegree, WithSchedule
// combined with protocol options or WithMaxRounds, WithRand+WithSeed, or a
// negative round budget.
var ErrConflictingOptions = errors.New("repro: conflicting options")

// ErrNoSuchSource marks a broadcast source (src or a WithSources entry)
// outside the graph's vertex range [0, n).
var ErrNoSuchSource = radio.ErrNoSuchSource

// ErrScheduleMismatch marks a schedule that does not fit the graph or the
// radio model: replaying a schedule with out-of-range or uninformed
// transmitters (ErrUninformedTransmitter wraps it), or BuildSchedule on an
// instance that admits no valid schedule (empty graph, vertices
// unreachable from the source).
var ErrScheduleMismatch = radio.ErrScheduleMismatch

// ErrCanceled marks a run stopped cooperatively by its context. The
// partial Result returned alongside it is valid: it reflects exactly the
// rounds executed before cancellation.
var ErrCanceled = radio.ErrCanceled
