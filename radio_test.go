package repro

import (
	"math"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	rng := NewRand(1)
	const n = 2000
	d := 2 * math.Log(n)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		t.Fatal("no connected sample")
	}
	if g.N() != n {
		t.Fatalf("n = %d", g.N())
	}
	if !IsConnected(g) {
		t.Fatal("claimed connected but is not")
	}

	// Distributed protocol.
	res := Broadcast(g, 0, d, rng)
	if !res.Completed {
		t.Fatalf("distributed incomplete: %d/%d", res.Informed, n)
	}
	if float64(res.Rounds) > 30*DistributedBound(n) {
		t.Fatalf("distributed took %d rounds", res.Rounds)
	}

	// Centralized schedule.
	sched, err := BuildSchedule(g, 0, d, 7)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := ExecuteSchedule(g, 0, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Completed {
		t.Fatal("centralized incomplete")
	}
	if float64(cres.Rounds) > 15*CentralizedBound(n, d) {
		t.Fatalf("centralized took %d rounds vs bound %v", cres.Rounds, CentralizedBound(n, d))
	}
	if cres.Rounds < Eccentricity(g, 0) {
		t.Fatal("finished below the eccentricity lower bound?!")
	}
}

func TestFacadeCustomProtocol(t *testing.T) {
	rng := NewRand(2)
	g := GnpDegree(500, 15, rng)
	p := ProtocolFunc(func(v int32, round int, informedAt int32, r *Rand) bool {
		return r.Bernoulli(1.0 / 15)
	})
	res := RunProtocol(g, 0, p, 5000, rng)
	if res.Informed < 2 {
		t.Fatal("custom protocol informed nobody")
	}
	// BroadcastTime sentinel behaviour.
	never := ProtocolFunc(func(v int32, round int, informedAt int32, r *Rand) bool { return false })
	if got := BroadcastTime(g, 0, never, 5, rng); got != 6 {
		t.Fatalf("sentinel = %d", got)
	}
}

func TestFacadeBuilderAndEngine(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	e := NewEngine(g, 0)
	if _, err := e.Round([]int32{0}); err != nil {
		t.Fatal(err)
	}
	if !e.Informed(1) || e.Informed(2) {
		t.Fatal("engine state wrong after round 1")
	}
	if _, err := e.Round([]int32{2}); err == nil {
		t.Fatal("uninformed transmitter accepted by strict engine")
	}
}

func TestFacadeGnm(t *testing.T) {
	g := Gnm(100, 300, NewRand(3))
	if g.N() != 100 || g.M() != 300 {
		t.Fatalf("Gnm: n=%d m=%d", g.N(), g.M())
	}
}

func TestFacadeBounds(t *testing.T) {
	if CentralizedBound(1000, 10) <= 0 || DistributedBound(1000) <= 0 {
		t.Fatal("bounds nonpositive")
	}
	if MaxRounds(1000) < int(DistributedBound(1000)) {
		t.Fatal("MaxRounds below the bound")
	}
}
