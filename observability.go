package repro

// Facade over the round-level observability layer (internal/trace): an
// Observer attached to a run — via WithObserver, Engine.Attach, or the
// observer-accepting extension entry points — receives one RoundRecord per
// executed round, bracketed by BeginRun/EndRun. Observation is zero-cost
// when disabled and consumes no randomness, so observed and unobserved
// runs are bit-for-bit identical.

import (
	"io"

	"repro/internal/trace"
)

type (
	// Observer receives the per-round stream of a simulation run.
	Observer = trace.Observer
	// RoundRecord describes one executed round: transmitters, clean
	// receptions, collisions, silent listeners, frontier growth and the
	// cumulative informed count.
	RoundRecord = trace.RoundRecord
	// RunInfo describes a run at BeginRun time.
	RunInfo = trace.RunInfo
	// RunSummary describes a finished run at EndRun time.
	RunSummary = trace.Summary
	// Counters is an Observer accumulating aggregate metrics across runs;
	// its totals always agree with Engine.Stats (same accounting path).
	Counters = trace.Counters
	// Recorder is an Observer storing the complete trace in memory.
	Recorder = trace.Recorder
	// FrontierProfile is an Observer capturing per-round frontier growth —
	// the measurable analogue of Lemma 3's layer sizes |T_i| ≈ d^i.
	FrontierProfile = trace.FrontierProfile
	// JSONLWriter is an Observer streaming a run as JSON Lines.
	JSONLWriter = trace.JSONLWriter
)

// NewJSONLWriter returns an observer that streams the run to w as JSON
// Lines: a "begin" record, one "round" record per executed round, and an
// "end" record (set RoundsOnly for bare round records). Check Err after
// the run.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return trace.NewJSONLWriter(w) }

// MultiObserver composes observers: every notification fans out to each
// in order. Nil entries are dropped; with zero or one effective observer
// no indirection is added.
func MultiObserver(obs ...Observer) Observer { return trace.Multi(obs...) }
