package repro

// RunBatch: the facade entry to the bit-parallel lane engine. One call
// runs many independent Monte-Carlo trials of the same broadcast
// configuration — same graph, same sources, same protocol — and returns
// the per-trial completion rounds, simulating 64 trials per machine word
// per edge pass (internal/lanes) whenever the protocol declares a fully
// uniform round schedule, and falling back to scalar engine trials
// otherwise.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sweep"
)

// RunBatch simulates `trials` independent broadcasts of a message from
// src on g and returns each trial's completion round, in trial order; a
// trial that does not finish within the round budget reports budget+1
// (the BroadcastTimeOn sentinel), so Completed is rounds[i] <= budget.
//
// Trial i draws its randomness from a private stream derived as
// sweep.Seeds(trials, seed)[i] from the WithSeed base (default 1) — the
// repository-wide trial-seed convention — so results are deterministic
// and every trial is a pure function of its own derived seed: the batch
// is bitwise independent of lane width, block sharding, worker count and
// GOMAXPROCS. Protocols with a fully uniform schedule (the paper's
// distributed protocol, Decay, Aloha, Flood) run on the bit-parallel lane
// engine — a new randomness stream, distributionally identical to scalar
// trials of the same seeds but not bit-identical to them (the PR 3 stream
// policy); other protocols fall back to per-trial scalar runs.
//
// Supported options: WithDegree, WithProtocol, WithMaxRounds, WithSeed,
// WithSources, WithContext. WithSchedule, WithObserver, WithRand and
// WithPerNodeSampling are rejected with ErrConflictingOptions: schedules
// and observers are inherently scalar per-trial notions (use Run per
// trial), and a shared *Rand would make trials order-dependent — batch
// randomness must come from a derivable seed.
func RunBatch(g *Graph, src int32, trials int, opts ...Option) ([]int, error) {
	c := runConfig{}
	for _, o := range opts {
		o(&c)
	}
	switch {
	case c.schedule != nil:
		return nil, fmt.Errorf("%w: RunBatch does not take WithSchedule (schedules are single-trial; use Run)", ErrConflictingOptions)
	case c.obs != nil:
		return nil, fmt.Errorf("%w: RunBatch does not take WithObserver (observe single trials with Run)", ErrConflictingOptions)
	case c.rng != nil:
		return nil, fmt.Errorf("%w: RunBatch does not take WithRand; batch trial streams derive from WithSeed", ErrConflictingOptions)
	case c.perNode:
		return nil, fmt.Errorf("%w: RunBatch does not take WithPerNodeSampling (the per-node stream is single-trial; use Run)", ErrConflictingOptions)
	case c.protocol != nil && c.hasDegree:
		return nil, fmt.Errorf("%w: WithProtocol and WithDegree are mutually exclusive", ErrConflictingOptions)
	case c.hasMax && c.maxRounds < 0:
		return nil, fmt.Errorf("%w: negative round budget %d", ErrConflictingOptions, c.maxRounds)
	}
	sources := append([]int32{src}, c.extraSrc...)
	for _, s := range sources {
		if s < 0 || int(s) >= g.N() {
			return nil, fmt.Errorf("%w: source %d outside [0,%d)", ErrNoSuchSource, s, g.N())
		}
	}
	if trials <= 0 {
		return []int{}, nil
	}
	seed := uint64(1)
	if c.hasSeed {
		seed = c.seed
	}
	p := c.protocol
	if p == nil {
		d := c.degree
		if !c.hasDegree {
			d = meanDegree(g)
		}
		p = core.NewDistributedProtocol(g.N(), d)
	}
	maxRounds := c.maxRounds
	if !c.hasMax {
		maxRounds = core.MaxRoundsFor(g.N())
	}
	ctx := c.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	seeds := sweep.Seeds(trials, seed)
	out := make([]int, trials)

	// Backend selection lives in the unified execution layer: uniform
	// protocols run the lane engine, everything else falls back to
	// per-seed scalar trials on a worker pool. Values stay pure
	// functions of the trial seeds either way.
	if _, err := exec.RunSeeds(ctx, &exec.Request{
		Graph:     g,
		Sources:   sources,
		Protocol:  p,
		MaxRounds: maxRounds,
	}, seeds, out); err != nil {
		return nil, err
	}
	return out, nil
}
