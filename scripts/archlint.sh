#!/bin/sh
# archlint: enforce the execution-layer boundary (DESIGN.md section 10).
#
# Engine construction — lanes.NewEngine, radio.NewEngine,
# radio.NewEngineMulti, repro.NewEngine — is the unified execution
# layer's job. Consumers (the facade batch/run paths, sweep, campaign,
# serve, cluster) must go through internal/exec so backend selection,
# pooling and counters stay in one place. This script fails if any
# non-test file in a consumer layer constructs an engine directly.
#
# Deliberately exempt:
#   - internal/exec itself (the one legitimate construction site)
#   - _test.go files (tests build reference engines to diff against)
#   - internal/oracle (the differential oracle must build engines
#     independently of the layer it is checking)
#   - radio.go / deprecated.go facade constructors (NewEngine is public
#     API; the lint guards the run paths, not the constructor export)

set -eu
cd "$(dirname "$0")/.."

scan() {
	# $1: description, $2...: files/dirs to scan (missing ones skipped)
	desc=$1
	shift
	set -- $(for f in "$@"; do [ -e "$f" ] && printf '%s\n' "$f"; done)
	[ $# -eq 0 ] && return 0
	grep -rnE --include='*.go' --exclude='*_test.go' \
		'(lanes|radio|repro)\.NewEngine(Multi)?\(' "$@" || return 0
	echo "archlint: $desc must not construct engines directly; route through internal/exec" >&2
	return 1
}

fail=0
scan "the facade run paths (batch.go, options.go)" batch.go options.go || fail=1
scan "internal/sweep" internal/sweep || fail=1
scan "internal/campaign" internal/campaign || fail=1
scan "internal/serve" internal/serve || fail=1
scan "internal/cluster" internal/cluster || fail=1

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "archlint: ok (no engine construction outside internal/exec)"
