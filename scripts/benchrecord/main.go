// Command benchrecord turns `go test -bench` output into the repository's
// BENCH_N.json performance records, and gates performance ratios in CI.
//
// Record mode (the default) reads benchmark output on stdin (or -in),
// and writes a BENCH_N.json-shaped document to -out: environment lines
// (goos/goarch/cpu) are taken from the benchmark output itself and the
// date from -date, so the same input always produces the same record —
// regeneration is deterministic and diffable:
//
//	go test -run '^$' -bench 'BenchmarkBroadcastReuse$|BenchmarkLaneBroadcast' \
//	    -benchmem -benchtime 2s . > bench.out
//	go run ./scripts/benchrecord -in bench.out -date 2026-08-08 \
//	    -comment "..." -ref-name "..." -ref-ns 36789982 -accept-ratio 6 -out BENCH_3.json
//
// The acceptance section compares the lane benchmark's ns/trial metric
// (-lane-bench, default BenchmarkLaneBroadcast) against the fixed
// reference trial cost -ref-ns; the tool exits nonzero when the speedup
// is below -accept-ratio, so recording and enforcing the acceptance bar
// are the same step.
//
// Check mode (-check) asserts a same-run ratio instead of writing JSON:
// the scalar benchmark's ns/op divided by the lane benchmark's ns/trial
// must be at least -min-ratio. Because both numbers come from one run on
// one machine, the gate is portable to CI hardware of any speed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name        string  `json:"name"`
	What        string  `json:"what,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerTrial  float64 `json:"ns_per_trial,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// record is the BENCH_N.json document shape (see BENCH_2.json).
type record struct {
	Comment    string         `json:"comment"`
	Recorded   string         `json:"recorded"`
	Goos       string         `json:"goos"`
	Goarch     string         `json:"goarch"`
	CPU        string         `json:"cpu"`
	Go         string         `json:"go"`
	Workload   map[string]any `json:"workload"`
	Reference  map[string]any `json:"reference,omitempty"`
	Acceptance map[string]any `json:"acceptance,omitempty"`
	Benchmarks []*benchResult `json:"benchmarks"`
}

// whatFor annotates the benchmarks this repository records.
var whatFor = map[string]string{
	"BenchmarkBroadcastReuse":        "scalar reference: BroadcastTimeOn on a caller-owned engine, sampled fast path, one trial per op",
	"BenchmarkLaneBroadcast":         "bit-parallel lane engine: 64 trials per Engine.Run call on the same workload; ns/trial is the headline metric",
	"BenchmarkLaneBroadcastSmall":    "lane engine at n=10000 d=25 for the EXPERIMENTS.md throughput table",
	"BenchmarkBroadcastReusePerNode": "per-node sampling opt-out (pre-fast-path behaviour)",
	"BenchmarkFacadeRunBatch":        "facade RunBatch through the unified execution layer (internal/exec): classification, seed derivation and lane-engine construction included; ns/trial vs BenchmarkLaneBroadcast is the executor overhead",
}

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	out := flag.String("out", "", "record output file (default stdout)")
	date := flag.String("date", "", "recorded date, YYYY-MM-DD (required in record mode: keeps regeneration deterministic)")
	comment := flag.String("comment", "", "record comment")
	goVersion := flag.String("go", "go1.24.0", "toolchain version stamped into the record")
	refName := flag.String("ref-name", "", "acceptance reference description")
	refNs := flag.Float64("ref-ns", 0, "acceptance reference cost in ns per trial")
	acceptRatio := flag.Float64("accept-ratio", 0, "minimum speedup of -lane-bench ns/trial vs -ref-ns (0 = no gate)")
	laneBench := flag.String("lane-bench", "BenchmarkLaneBroadcast", "benchmark whose ns/trial metric is the headline")
	scalarBench := flag.String("scalar-bench", "BenchmarkBroadcastReuse", "scalar benchmark for -check's same-run ratio")
	check := flag.Bool("check", false, "check mode: assert scalar ns/op / lane ns/trial >= -min-ratio, write no record")
	minRatio := flag.Float64("min-ratio", 3, "minimum same-run speedup accepted by -check")
	baseBench := flag.String("base-bench", "", "baseline benchmark for the same-run overhead gate: -lane-bench ns/trial over this benchmark's ns/trial must stay <= -max-overhead")
	maxOverhead := flag.Float64("max-overhead", 0, "maximum same-run overhead ratio accepted when -base-bench is set (0 = no gate)")
	n := flag.Int("n", 100000, "workload graph size")
	d := flag.Float64("d", 25, "workload expected degree")
	flag.Parse()

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	env, results, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *check {
		if *baseBench != "" {
			// Overhead form: both numbers are same-run ns/trial metrics,
			// so the gate is portable to CI hardware of any speed.
			over, base := overheadRatio(results, *laneBench, *baseBench)
			fmt.Printf("benchrecord: %s %.0f ns/trial vs %s %.0f ns/trial: %.3fx overhead (gate %.2fx)\n",
				*laneBench, base*over, *baseBench, base, over, *maxOverhead)
			if *maxOverhead > 0 && over > *maxOverhead {
				fatal(fmt.Errorf("overhead %.3fx above the %.2fx gate", over, *maxOverhead))
			}
			return
		}
		scalar := find(results, *scalarBench)
		lane := find(results, *laneBench)
		if scalar == nil || lane == nil {
			fatal(fmt.Errorf("check needs both %s and %s in the input", *scalarBench, *laneBench))
		}
		if lane.NsPerTrial == 0 {
			fatal(fmt.Errorf("%s reports no ns/trial metric", *laneBench))
		}
		ratio := scalar.NsPerOp / lane.NsPerTrial
		fmt.Printf("benchrecord: %s %.0f ns/op vs %s %.0f ns/trial: %.2fx (gate %.2fx)\n",
			*scalarBench, scalar.NsPerOp, *laneBench, lane.NsPerTrial, ratio, *minRatio)
		if ratio < *minRatio {
			fatal(fmt.Errorf("lane speedup %.2fx below the %.2fx gate", ratio, *minRatio))
		}
		return
	}

	if *date == "" {
		fatal(fmt.Errorf("-date is required in record mode"))
	}
	rec := &record{
		Comment:  *comment,
		Recorded: *date,
		Goos:     env["goos"],
		Goarch:   env["goarch"],
		CPU:      env["cpu"],
		Go:       *goVersion,
		Workload: map[string]any{
			"n":               *n,
			"expected_degree": *d,
		},
		Benchmarks: results,
	}
	if *refNs > 0 {
		rec.Reference = map[string]any{
			"name":      *refName,
			"ns_per_op": int64(*refNs),
		}
		lane := find(results, *laneBench)
		if lane == nil || lane.NsPerTrial == 0 {
			fatal(fmt.Errorf("acceptance needs %s with a ns/trial metric", *laneBench))
		}
		speedup := *refNs / lane.NsPerTrial
		rec.Acceptance = map[string]any{
			"speedup_vs_reference": round2(speedup),
			"note": fmt.Sprintf("%s at %.0f ns/trial vs the %.0f ns reference = %.1fx (criterion: >= %.1fx)",
				*laneBench, lane.NsPerTrial, *refNs, speedup, *acceptRatio),
		}
		if *acceptRatio > 0 && speedup < *acceptRatio {
			fatal(fmt.Errorf("lane speedup %.2fx below the %.2fx acceptance bar", speedup, *acceptRatio))
		}
	}
	if *baseBench != "" {
		over, base := overheadRatio(results, *laneBench, *baseBench)
		if rec.Acceptance == nil {
			rec.Acceptance = map[string]any{}
		}
		rec.Acceptance["overhead_vs_base"] = round2(over)
		rec.Acceptance["overhead_note"] = fmt.Sprintf("%s at %.0f ns/trial over %s at %.0f ns/trial in the same run = %.3fx (criterion: <= %.2fx)",
			*laneBench, base*over, *baseBench, base, over, *maxOverhead)
		if *maxOverhead > 0 && over > *maxOverhead {
			fatal(fmt.Errorf("overhead %.3fx above the %.2fx acceptance bar", over, *maxOverhead))
		}
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}
}

// parse reads `go test -bench` output: environment header lines
// (goos/goarch/cpu) and benchmark result lines. A benchmark line is
//
//	BenchmarkName-8   62   36789982 ns/op   4089250 ns/trial   45259 B/op   1 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs.
func parse(r io.Reader) (env map[string]string, results []*benchResult, err error) {
	env = map[string]string{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				env[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name, _, _ := strings.Cut(f[0], "-")
		iters, err := strconv.Atoi(f[1])
		if err != nil {
			continue
		}
		res := &benchResult{Name: name, What: whatFor[name], Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "ns/trial":
				res.NsPerTrial = v
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			}
		}
		results = append(results, res)
	}
	return env, results, sc.Err()
}

// overheadRatio returns the lane benchmark's ns/trial divided by the
// base benchmark's ns/trial (both from the same run) and the base value.
func overheadRatio(results []*benchResult, laneName, baseName string) (ratio, base float64) {
	lane := find(results, laneName)
	b := find(results, baseName)
	if lane == nil || b == nil {
		fatal(fmt.Errorf("overhead gate needs both %s and %s in the input", laneName, baseName))
	}
	if lane.NsPerTrial == 0 || b.NsPerTrial == 0 {
		fatal(fmt.Errorf("overhead gate needs ns/trial metrics on both %s and %s", laneName, baseName))
	}
	return lane.NsPerTrial / b.NsPerTrial, b.NsPerTrial
}

func find(results []*benchResult, name string) *benchResult {
	for _, r := range results {
		if r.Name == name {
			return r
		}
	}
	return nil
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrecord:", err)
	os.Exit(1)
}
