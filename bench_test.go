package repro

// Benchmark harness: one Benchmark per reproduction experiment (E1–E23 of
// DESIGN.md §3 — the paper is a theory extended abstract with no tables or
// figures, so each of its claims and each extension maps to one experiment
// here), plus micro-benchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark executes the full experiment at Small scale
// per iteration and ALSO prints its result table the first time, so a
// bench run regenerates every number in miniature; cmd/experiments
// produces the Medium-scale tables recorded in EXPERIMENTS.md.

import (
	"math"
	"sync"
	"testing"

	"repro/internal/exp"
	"repro/internal/lanes"
	"repro/internal/radio"
	"repro/internal/rumor"
)

var benchPrintOnce sync.Map // experiment ID -> *sync.Once

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	oncer, _ := benchPrintOnce.LoadOrStore(id, &sync.Once{})
	for i := 0; i < b.N; i++ {
		cfg := exp.Config{Scale: exp.Small, Seed: 1000 + uint64(i)}
		tables := e.Run(cfg)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
		oncer.(*sync.Once).Do(func() {
			b.Logf("%s: %s\n", e.ID, e.Title)
			for _, t := range tables {
				b.Logf("\n%s", t.String())
			}
		})
	}
}

func BenchmarkE1CentralizedScalingN(b *testing.B)    { runExperiment(b, "E1") }
func BenchmarkE2CentralizedScalingD(b *testing.B)    { runExperiment(b, "E2") }
func BenchmarkE3CentralizedLowerBound(b *testing.B)  { runExperiment(b, "E3") }
func BenchmarkE4DistributedScalingN(b *testing.B)    { runExperiment(b, "E4") }
func BenchmarkE5ProtocolComparison(b *testing.B)     { runExperiment(b, "E5") }
func BenchmarkE6DistributedLowerBound(b *testing.B)  { runExperiment(b, "E6") }
func BenchmarkE7LayerStructure(b *testing.B)         { runExperiment(b, "E7") }
func BenchmarkE8CoversMatchings(b *testing.B)        { runExperiment(b, "E8") }
func BenchmarkE9DenseRegime(b *testing.B)            { runExperiment(b, "E9") }
func BenchmarkE10ModelCrossover(b *testing.B)        { runExperiment(b, "E10") }
func BenchmarkE11GnmEquivalence(b *testing.B)        { runExperiment(b, "E11") }
func BenchmarkE12Ablations(b *testing.B)             { runExperiment(b, "E12") }
func BenchmarkE13Gossiping(b *testing.B)             { runExperiment(b, "E13") }
func BenchmarkE14ExactOptima(b *testing.B)           { runExperiment(b, "E14") }
func BenchmarkE15ScheduleFamily(b *testing.B)        { runExperiment(b, "E15") }
func BenchmarkE16CrashFaults(b *testing.B)           { runExperiment(b, "E16") }
func BenchmarkE17CommunityStructure(b *testing.B)    { runExperiment(b, "E17") }
func BenchmarkE18SourceInvariance(b *testing.B)      { runExperiment(b, "E18") }
func BenchmarkE19KnowledgeAndCD(b *testing.B)        { runExperiment(b, "E19") }
func BenchmarkE20PipelineThroughput(b *testing.B)    { runExperiment(b, "E20") }
func BenchmarkE21LeaderElection(b *testing.B)        { runExperiment(b, "E21") }
func BenchmarkE22ConnectivityThreshold(b *testing.B) { runExperiment(b, "E22") }
func BenchmarkE23CollisionTrace(b *testing.B)        { runExperiment(b, "E23") }

// --- fast-path micro-benchmarks --------------------------------------------
//
// BenchmarkBuilderBuild, BenchmarkGnp and BenchmarkBroadcast are the three
// benchmarks tracked in BENCH_0.json (the recorded baseline of the
// simulation fast path): CSR construction, G(n,p) generation and one full
// distributed broadcast. Regenerate the numbers with:
//
//	go test -run=^$ -bench='BenchmarkBuilderBuild$|BenchmarkGnp$|BenchmarkBroadcast$' -benchmem

// benchEdges returns a fixed random edge list with n=100k, E[deg]=25
// (about 1.25M edges), shared by the build benchmarks.
func benchEdges() (int, [][2]int32) {
	const n = 100000
	rng := NewRand(11)
	g := GnpDegree(n, 25, rng)
	edges := make([][2]int32, 0, g.M())
	g.Edges(func(u, v int32) bool {
		edges = append(edges, [2]int32{u, v})
		return true
	})
	return n, edges
}

func BenchmarkBuilderBuild(b *testing.B) {
	n, edges := benchEdges()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bl := NewBuilder(n)
		bl.Grow(len(edges))
		for _, e := range edges {
			bl.AddEdge(e[0], e[1])
		}
		b.StartTimer()
		g := bl.Build()
		if g.M() != len(edges) {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkGnp(b *testing.B) {
	rng := NewRand(12)
	const n = 100000
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := GnpDegree(n, 25, rng)
		if g.N() != n {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkBroadcast(b *testing.B) {
	rng := NewRand(13)
	const n = 100000
	const d = 25.0
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		b.Fatal("no connected sample")
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := Broadcast(g, 0, d, rng)
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkBroadcastReuse is BenchmarkBroadcast on the engine-reuse fast
// path: one caller-owned engine driven by BroadcastTimeOn, so steady-state
// trials allocate nothing. Compare with BenchmarkBroadcast to see the
// per-trial allocation cost the reuse API removes.
func BenchmarkBroadcastReuse(b *testing.B) {
	rng := NewRand(13)
	const n = 100000
	const d = 25.0
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		b.Fatal("no connected sample")
	}
	e := NewEngine(g, 0)
	p := NewProtocol(n, d)
	budget := MaxRounds(n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if BroadcastTimeOn(e, p, budget, rng) > budget {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkBroadcastReusePerNode is BenchmarkBroadcastReuse with the
// sampled-transmitter fast path disabled (SetPerNodeSampling): the engine
// asks the protocol for one Bernoulli decision per informed node per round
// — the pre-fast-path behaviour the deprecated wrappers keep. The ratio
// BroadcastReusePerNode / BroadcastReuse is the fast-path speedup recorded
// in BENCH_2.json.
func BenchmarkBroadcastReusePerNode(b *testing.B) {
	rng := NewRand(13)
	const n = 100000
	const d = 25.0
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		b.Fatal("no connected sample")
	}
	e := NewEngine(g, 0)
	e.SetPerNodeSampling(true)
	p := NewProtocol(n, d)
	budget := MaxRounds(n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if BroadcastTimeOn(e, p, budget, rng) > budget {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkLaneBroadcast measures the bit-parallel lane engine on exactly
// the BenchmarkBroadcastReuse workload (same graph seed, n, degree,
// protocol and round budget): each iteration runs one 64-trial lane block,
// so the recorded ns/trial metric divides directly into the scalar
// benchmark's ns/op — that ratio is the lane-engine speedup recorded in
// BENCH_3.json. Seeds rotate per iteration so the measurement averages
// over trial outcomes like the scalar benchmark's advancing rng does.
func BenchmarkLaneBroadcast(b *testing.B) {
	benchLaneBroadcast(b, 100000, 25.0)
}

// BenchmarkLaneBroadcastSmall is BenchmarkLaneBroadcast at n=10k — the
// second row of the EXPERIMENTS.md throughput table, where the working
// set fits in cache and the lane advantage is at its largest.
func BenchmarkLaneBroadcastSmall(b *testing.B) {
	benchLaneBroadcast(b, 10000, 25.0)
}

func benchLaneBroadcast(b *testing.B, n int, d float64) {
	rng := NewRand(13)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		b.Fatal("no connected sample")
	}
	p := NewProtocol(n, d)
	budget := MaxRounds(n)
	plan, ok := lanes.NewPlan(p, budget)
	if !ok {
		b.Fatal("distributed protocol must be lane-uniform")
	}
	e := lanes.NewEngine(g, []int32{0}, plan)
	parent := NewRand(1)
	seeds := make([]uint64, lanes.Width)
	out := make([]int, lanes.Width)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := uint64(i) * lanes.Width
		for j := range seeds {
			seeds[j] = parent.DeriveSeed(base + uint64(j) + 1)
		}
		e.Run(seeds, out)
		for _, r := range out {
			if r > budget {
				b.Fatal("incomplete")
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*lanes.Width), "ns/trial")
}

// BenchmarkFacadeRunBatch is the executor-path guard: the exact
// BenchmarkLaneBroadcast workload entered through the public facade, so
// each iteration pays the whole unified execution layer — option parsing,
// backend classification, seed derivation and lane-engine construction —
// on top of the 64-trial lane block. Its ns/trial against BENCH_2's
// scalar reference is recorded in BENCH_4.json with the same >= 6x bar
// as the raw lane engine: routing every consumer through internal/exec
// must not cost the batch path its acceptance margin.
func BenchmarkFacadeRunBatch(b *testing.B) {
	rng := NewRand(13)
	const n = 100000
	const d = 25.0
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		b.Fatal("no connected sample")
	}
	budget := MaxRounds(n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rounds, err := RunBatch(g, 0, int(lanes.Width), WithDegree(d), WithSeed(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rounds {
			if r > budget {
				b.Fatal("incomplete")
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*lanes.Width), "ns/trial")
}

// BenchmarkGossipPhased measures one phased gossip run (sampled fast path:
// Uniform/Phased declare uniform rounds); n is small because gossip state
// is n²/8 bytes.
func BenchmarkGossipPhased(b *testing.B) {
	rng := NewRand(14)
	const n = 2000
	d := 2 * math.Log(n)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		b.Fatal("no connected sample")
	}
	p := NewPhasedGossip(n, d)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := GossipWith(g, p, 100000, rng)
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkBroadcastReuseObserved is BenchmarkBroadcastReuse with a
// Counters observer attached — the observer-layer overhead guard. The
// per-round cost of observation is one RoundRecord (a stack value) and one
// interface call; compare with BenchmarkBroadcastReuse to see it, and note
// that the reuse benchmark itself runs with a nil observer, so the
// zero-cost-when-disabled claim is covered by its unchanged numbers (see
// BENCH_1.json).
func BenchmarkBroadcastReuseObserved(b *testing.B) {
	rng := NewRand(13)
	const n = 100000
	const d = 25.0
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		b.Fatal("no connected sample")
	}
	e := NewEngine(g, 0)
	var c Counters
	e.Attach(&c)
	p := NewProtocol(n, d)
	budget := MaxRounds(n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if BroadcastTimeOn(e, p, budget, rng) > budget {
			b.Fatal("incomplete")
		}
	}
	if c.Runs != b.N || c.Informed != n {
		b.Fatalf("counters missed runs: %+v", c)
	}
}

// --- substrate micro-benchmarks --------------------------------------------

func BenchmarkSubstrateGnpGeneration(b *testing.B) {
	rng := NewRand(1)
	const n = 100000
	d := 2 * math.Log(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := GnpDegree(n, d, rng)
		if g.N() != n {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkSubstrateCentralizedBuild(b *testing.B) {
	rng := NewRand(2)
	const n = 20000
	d := 2 * math.Log(n)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		b.Fatal("no connected sample")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSchedule(g, 0, d, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateDistributedRun(b *testing.B) {
	rng := NewRand(3)
	const n = 20000
	d := 2 * math.Log(n)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		b.Fatal("no connected sample")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Broadcast(g, 0, d, rng)
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkSubstrateEngineRound(b *testing.B) {
	rng := NewRand(4)
	const n = 50000
	d := 20.0
	g := GnpDegree(n, d, rng)
	e := radio.NewEngine(g, 0, radio.MagicTransmitters)
	tx := rng.Sample(n, n/int(d))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Round(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstratePushRumor(b *testing.B) {
	rng := NewRand(5)
	const n = 20000
	d := 3 * math.Log(n)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		b.Fatal("no connected sample")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := rumor.Spread(g, 0, rumor.Push, 10*MaxRounds(n), rng)
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}
