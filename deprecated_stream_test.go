package repro

// Regression guard for the sampled-transmitter fast path: the deprecated
// positional entry points (Broadcast, RunProtocol, BroadcastMulti) are
// frozen to their historical per-node randomness streams. The golden
// values below were recorded BEFORE the fast path landed (commit
// b0c4f2c); if any of these assertions fails, a wrapper's stream drifted.

import (
	"hash/fnv"
	"testing"
)

// fingerprint folds a Result into a stable uint64: rounds, counters and
// the full per-node InformedAt vector all contribute, so any bit-level
// divergence in the simulation shows up here.
func fingerprint(res Result) uint64 {
	h := fnv.New64a()
	put := func(x int) {
		var b [8]byte
		v := uint64(int64(x))
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(res.Rounds)
	put(res.Informed)
	put(res.Stats.Transmissions)
	put(res.Stats.Deliveries)
	put(res.Stats.Collisions)
	put(res.Stats.NewlyInformed)
	for _, at := range res.InformedAt {
		put(int(at))
	}
	return h.Sum64()
}

func TestDeprecatedWrapperStreamsFrozen(t *testing.T) {
	const n = 2000
	const d = 25.0
	g := testGraph(t, n, d, 1)

	for _, tc := range []struct {
		name string
		seed uint64
		want uint64 // recorded pre-fast-path fingerprint
		run  func(seed uint64) Result
	}{
		{"Broadcast/seed3", 3, 13442191628768536704, func(s uint64) Result { return Broadcast(g, 0, d, NewRand(s)) }},
		{"Broadcast/seed9", 9, 17540272938987344624, func(s uint64) Result { return Broadcast(g, 0, d, NewRand(s)) }},
		{"RunProtocol/seed5", 5, 16578885538056467629, func(s uint64) Result {
			return RunProtocol(g, 0, NewProtocol(n, d), MaxRounds(n), NewRand(s))
		}},
		{"BroadcastMulti/seed7", 7, 17027192350006751548, func(s uint64) Result {
			return BroadcastMulti(g, []int32{0, 41, 97}, d, NewRand(s))
		}},
	} {
		got := fingerprint(tc.run(tc.seed))
		t.Logf("GOLDEN %s: %d", tc.name, got)
		if tc.want != 0 && got != tc.want {
			t.Errorf("%s: fingerprint %d, frozen golden %d — the deprecated wrapper's randomness stream changed", tc.name, got, tc.want)
		}
	}
}
