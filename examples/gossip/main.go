// Gossip: all-to-all dissemination in a radio random graph — the open
// problem the paper's conclusions gesture at, built on the same collision
// model.
//
// Every node starts with a private rumor (think: sensor readings that
// must reach every node, not just spread from one source). A transmission
// carries every rumor the sender knows, so one clean reception can merge
// thousands of rumors at once. We race the Theorem-7-style phased
// protocol against uniform 1/d sampling and collision-free round-robin,
// and watch how knowledge accumulates.
//
// Run with:
//
//	go run ./examples/gossip
package main

import (
	"fmt"
	"log"
	"math"

	repro "repro"
	"repro/internal/gossip"
)

func main() {
	const n = 2000
	d := 2 * math.Log(n)
	g, ok := repro.ConnectedGnpDegree(n, d, repro.NewRand(5))
	if !ok {
		log.Fatal("no connected sample")
	}
	fmt.Printf("Gossiping on %v (d = %.1f): every node starts with its own rumor.\n\n", g, d)

	budget := 100 * n
	for _, entry := range []struct {
		name string
		p    gossip.Protocol
	}{
		{"phased (Thm 7 style)", gossip.NewPhased(n, d)},
		{"uniform 1/d", gossip.Uniform{Q: 1 / d}},
		{"round robin", gossip.RoundRobin{N: n}},
	} {
		res := gossip.Run(g, entry.p, budget, repro.NewRand(17))
		status := fmt.Sprintf("complete in %d rounds", res.Rounds)
		if !res.Completed {
			status = fmt.Sprintf("INCOMPLETE after %d rounds (min knowledge %d/%d)",
				res.Rounds, res.MinKnown, n)
		}
		avg := float64(res.KnownTotal) / float64(n)
		fmt.Printf("%-22s %s; average rumors per node %.0f\n", entry.name, status, avg)
	}

	fmt.Printf("\nBroadcast needs Θ(ln n) ≈ %.0f rounds here; gossip multiplies that by\n", math.Log(n))
	fmt.Println("roughly another log factor for the randomized protocols, while round")
	fmt.Println("robin pays Θ(n). Experiment E13 sweeps this over n.")
}
