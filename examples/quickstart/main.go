// Quickstart: sample a random radio network, broadcast with the paper's
// distributed protocol, then with the centralized schedule, and compare
// both against the theoretical bounds.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	repro "repro"
)

func main() {
	const n = 50000
	d := 2 * math.Log(n) // the paper's sparse regime: d = Θ(ln n)
	rng := repro.NewRand(42)

	fmt.Printf("Sampling a connected G(n=%d, p=d/n) with expected degree d=%.1f ...\n", n, d)
	g, ok := repro.ConnectedGnpDegree(n, d, rng)
	if !ok {
		log.Fatal("could not sample a connected graph; increase d")
	}
	fmt.Printf("Got %v; source eccentricity %d.\n\n", g, repro.Eccentricity(g, 0))

	// Fully distributed randomized broadcasting (Theorem 7): every node
	// knows only n and d.
	res := repro.Broadcast(g, 0, d, rng)
	fmt.Printf("Distributed protocol : %d rounds (completed=%v)\n", res.Rounds, res.Completed)
	fmt.Printf("  Theorem 7 bound    : O(ln n) = O(%.1f)  -> ratio %.2f\n",
		repro.DistributedBound(n), float64(res.Rounds)/repro.DistributedBound(n))
	fmt.Printf("  collisions suffered: %d, clean deliveries: %d\n\n",
		res.Stats.Collisions, res.Stats.Deliveries)

	// Centralized scheduling with full topology knowledge (Theorem 5).
	sched, err := repro.BuildSchedule(g, 0, d, 7)
	if err != nil {
		log.Fatal(err)
	}
	cres, err := repro.ExecuteSchedule(g, 0, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Centralized schedule : %d rounds (completed=%v)\n", cres.Rounds, cres.Completed)
	fmt.Printf("  Theorem 5 bound    : O(ln n/ln d + ln d) = O(%.1f)  -> ratio %.2f\n",
		repro.CentralizedBound(n, d), float64(cres.Rounds)/repro.CentralizedBound(n, d))
	fmt.Printf("  eccentricity (hard lower bound): %d rounds\n", repro.Eccentricity(g, 0))
}
