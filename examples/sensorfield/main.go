// Sensorfield: emergency dissemination over an ad-hoc wireless sensor
// deployment — the motivating scenario of the paper's introduction
// ("recent technological developments in wireless/mobile communication").
//
// A field of sensors is dropped uniformly at random on a unit square; two
// sensors hear each other within radio range r (a random geometric graph).
// A perimeter sensor detects an event and must alert the whole field under
// radio-collision semantics. We compare the paper's distributed protocol
// (using the empirical mean degree as d) with the Decay baseline, and show
// what deterministic flooding does under collisions.
//
// Run with:
//
//	go run ./examples/sensorfield
package main

import (
	"fmt"
	"math"

	repro "repro"
	"repro/internal/gen"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/protocols"
)

func main() {
	const n = 20000
	// Choose the radio range so the expected degree is ~3 ln n, safely
	// above the geometric connectivity threshold.
	targetDeg := 3 * math.Log(n)
	radius := math.Sqrt(targetDeg / (math.Pi * n))
	rng := repro.NewRand(7)

	fmt.Printf("Deploying %d sensors on the unit square, radio range %.4f ...\n", n, radius)
	g, xs, ys := gen.GeometricPoints(n, radius, rng)
	comp := graph.LargestComponent(g)
	fmt.Printf("Field graph: %v, largest component %d/%d\n", g, len(comp), n)

	// Pick the source as the sensor closest to the corner (0,0): the worst
	// perimeter case.
	src := int32(0)
	best := math.Inf(1)
	for _, v := range comp {
		d2 := xs[v]*xs[v] + ys[v]*ys[v]
		if d2 < best {
			best = d2
			src = v
		}
	}
	// Restrict to the largest component: stragglers outside it are
	// physically unreachable.
	field, orig := g.Subgraph(comp)
	var fsrc int32
	for i, v := range orig {
		if v == src {
			fsrc = int32(i)
		}
	}
	deg := field.Degrees()
	ecc := graph.Eccentricity(field, fsrc)
	fmt.Printf("Source sensor at (%.3f, %.3f); mean degree %.1f; eccentricity %d hops.\n\n",
		xs[src], ys[src], deg.Mean, ecc)

	maxRounds := 40*ecc + 2000
	for _, entry := range []struct {
		name string
		p    repro.Protocol
	}{
		{"paper protocol (Thm 7)", repro.NewProtocol(field.N(), deg.Mean)},
		{"decay (BGI baseline)", protocols.NewDecay(field.N())},
		{"aloha 1/d", protocols.NewAloha(deg.Mean)},
		{"deterministic flooding", protocols.Flood{}},
	} {
		res := repro.RunProtocol(field, fsrc, entry.p, maxRounds, rng)
		status := fmt.Sprintf("%d rounds", res.Rounds)
		if !res.Completed {
			status = fmt.Sprintf("STALLED at %d/%d sensors after %d rounds",
				res.Informed, field.N(), res.Rounds)
		}
		fmt.Printf("%-24s %s  (collisions: %d)\n", entry.name, status, res.Stats.Collisions)
	}

	// Position-aware deterministic scheduling: if the base station knows
	// every sensor's coordinates, the grid method gives a collision-free,
	// transmit-once schedule (internal/geo).
	fxs := make([]float64, field.N())
	fys := make([]float64, field.N())
	for i, v := range orig {
		fxs[i] = xs[v]
		fys[i] = ys[v]
	}
	if sched, err := geo.BuildGridSchedule(field, fxs, fys, radius, fsrc); err == nil {
		res, err := repro.ExecuteSchedule(field, fsrc, sched)
		if err == nil && res.Completed {
			fmt.Printf("%-24s %d rounds  (collisions: %d, transmissions: %d — position-aware, deterministic)\n",
				"grid schedule", res.Rounds, res.Stats.Collisions, res.Stats.Transmissions)
		}
	}

	fmt.Printf("\nGeometric fields have diameter Θ(1/r) = Θ(sqrt(n/ln n)) — the %d-hop\n", ecc)
	fmt.Println("eccentricity dominates every protocol; the paper's G(n,p) model has")
	fmt.Println("logarithmic diameter instead, which is where its O(ln n) bound lives.")
	fmt.Println("With known positions, the grid schedule trades rounds for determinism")
	fmt.Println("and minimal energy (every sensor transmits at most once).")
}
