// Primitives: a tour of the communication primitives beyond single-message
// broadcast, all through the public API — k-message broadcast
// (pipelining), all-to-all gossip, leader election with and without
// collision detection, and crash-fault recovery.
//
// Run with:
//
//	go run ./examples/primitives
package main

import (
	"fmt"
	"log"
	"math"

	repro "repro"
)

func main() {
	const n = 2000
	d := 2 * math.Log(n)
	rng := repro.NewRand(21)
	g, ok := repro.ConnectedGnpDegree(n, d, rng)
	if !ok {
		log.Fatal("no connected sample")
	}
	fmt.Printf("Network: %v, d=%.1f, ln n = %.1f\n\n", g, d, math.Log(n))

	// 1. Single-message broadcast (the paper's Theorem 7).
	res := repro.Broadcast(g, 0, d, rng)
	fmt.Printf("1. broadcast           : %4d rounds (1 message to all nodes)\n", res.Rounds)

	// 2. k-message broadcast: one message per transmission, rarest-first.
	const k = 8
	kres := repro.KBroadcast(g, 0, k, d, 500_000, rng)
	fmt.Printf("2. %d-message broadcast : %4d rounds (%.1fx the single message — pipelined)\n",
		k, kres.Rounds, float64(kres.Rounds)/float64(res.Rounds))

	// 3. Gossip: everyone starts with a rumor, everyone must learn all.
	gres := repro.Gossip(g, d, 500_000, rng)
	fmt.Printf("3. gossip (all-to-all) : %4d rounds (n rumors everywhere)\n", gres.Rounds)

	// 4. Leader election on a single shared channel.
	noCD := repro.ElectLeader(n, 1<<20, 1<<20, rng)
	cd := repro.ElectLeaderCD(n, 1<<20, 1<<20, rng)
	fmt.Printf("4. leader election     : %4d rounds without CD, %d with CD (knowing only n <= 2^20)\n",
		noCD, cd)

	// 5. Crash faults: a third of the network dies; broadcast to the rest.
	sc := repro.Crash(g, 0, 0.33, rng)
	fres := repro.Broadcast(sc.Sub, sc.SrcNew, d*0.67, rng)
	fmt.Printf("5. broadcast, 33%% dead : %4d rounds (%d/%d reachable survivors informed)\n",
		fres.Rounds, fres.Informed, sc.ReachableFromSource())

	fmt.Println("\nAll five primitives run on the same collision-exact radio model; the")
	fmt.Println("paper's 1/d-selective idea powers every one of them.")
}
