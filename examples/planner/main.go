// Planner: dissect the centralized broadcast schedule of Theorem 5.
//
// With full topology knowledge the scheduler plays five phases (tree
// parity ping-pong, Θ(n/d) kick-off, disjoint 1/d-selective rounds,
// independent-cover finish, backward sweep). This example builds the
// schedule on one graph, prints the phase structure and a per-round
// trace, and verifies the independent-cover property of the final rounds
// explicitly.
//
// Run with:
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"log"
	"math"

	repro "repro"
	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/structure"
)

func main() {
	const n = 20000
	d := 2 * math.Log(n)
	rng := repro.NewRand(11)
	g, ok := repro.ConnectedGnpDegree(n, d, rng)
	if !ok {
		log.Fatal("no connected sample")
	}

	sched, trace, err := core.BuildCentralizedSchedule(g, 0, d, core.DefaultCentralizedConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Graph %v, d=%.1f\n", g, d)
	fmt.Printf("Schedule: %d rounds — %s\n", sched.Len(), trace)
	fmt.Printf("Theorem 5 bound: ln n/ln d + ln d = %.1f (ratio %.2f)\n\n",
		repro.CentralizedBound(n, d), float64(sched.Len())/repro.CentralizedBound(n, d))

	// Replay round by round, annotating phases.
	phaseOf := func(r int) string {
		switch {
		case r <= trace.TreeRounds:
			return "tree"
		case r <= trace.TreeRounds+trace.KickoffRounds:
			return "kick"
		case r <= trace.TreeRounds+trace.KickoffRounds+trace.SelectiveRounds:
			return "selective"
		case r <= trace.TreeRounds+trace.KickoffRounds+trace.SelectiveRounds+trace.CoverRounds:
			return "cover"
		default:
			return "backward"
		}
	}
	e := radio.NewEngine(g, 0, radio.StrictInformed)
	fmt.Println("round  phase      transmitters  newly-informed  total-informed")
	for r, set := range sched.Sets {
		if e.Done() {
			break
		}
		// For the cover rounds, verify the independent-cover property
		// against the CURRENT uninformed set before executing.
		var coverCheck string
		if phaseOf(r+1) == "cover" || phaseOf(r+1) == "backward" {
			y := e.AppendUninformed(nil)
			c := structure.EvaluateCover(g, set, y)
			coverCheck = fmt.Sprintf("  [covers %d/%d uninformed, %d collide]",
				len(c.Covered), len(y), len(c.Collided))
		}
		newly, err := e.Round(set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %-9s  %12d  %14d  %14d%s\n",
			r+1, phaseOf(r+1), len(set), len(newly), e.InformedCount(), coverCheck)
	}
	if !e.Done() {
		log.Fatalf("schedule incomplete: %d/%d", e.InformedCount(), n)
	}
	fmt.Printf("\nBroadcast complete in %d rounds; %d collisions along the way.\n",
		e.RoundCount(), e.Stats().Collisions)
}
