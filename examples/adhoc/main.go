// Adhoc: head-to-head protocol shoot-out on an unknown-topology ad-hoc
// network — the related-work landscape of §1.2 in one run.
//
// On the same random radio network we race: the paper's distributed
// protocol (Theorem 7), BGI Decay, ALOHA, a deterministic selective-family
// schedule, deterministic round-robin, and — crossing models — single-port
// push and push–pull rumor spreading (Feige et al.), which have no
// collisions at all.
//
// Run with:
//
//	go run ./examples/adhoc
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	repro "repro"
	"repro/internal/protocols"
	"repro/internal/rumor"
	"repro/internal/selective"
)

const trials = 7

func medianTime(run func(rng *repro.Rand) int) int {
	times := make([]int, trials)
	for i := range times {
		times[i] = run(repro.NewRand(1000 + uint64(i)))
	}
	sort.Ints(times)
	return times[trials/2]
}

func main() {
	const n = 10000
	d := 2 * math.Log(n)
	g, ok := repro.ConnectedGnpDegree(n, d, repro.NewRand(3))
	if !ok {
		log.Fatal("no connected sample")
	}
	fmt.Printf("Ad-hoc network: %v, d=%.1f, ln n = %.1f\n\n", g, d, math.Log(n))
	budget := 6 * n

	family := selective.Random(n, int(4*d), int(math.Ceil(math.Log2(n))), repro.NewRand(9))

	rows := []struct {
		name  string
		model string
		run   func(rng *repro.Rand) int
	}{
		{"paper protocol (Thm 7)", "radio", func(rng *repro.Rand) int {
			return repro.BroadcastTime(g, 0, repro.NewProtocol(n, d), budget, rng)
		}},
		{"decay (BGI)", "radio", func(rng *repro.Rand) int {
			return repro.BroadcastTime(g, 0, protocols.NewDecay(n), budget, rng)
		}},
		{"aloha 1/d", "radio", func(rng *repro.Rand) int {
			return repro.BroadcastTime(g, 0, protocols.NewAloha(d), budget, rng)
		}},
		{"selective family", "radio", func(rng *repro.Rand) int {
			return repro.BroadcastTime(g, 0, &selective.Protocol{F: family}, budget, rng)
		}},
		{"round robin", "radio", func(rng *repro.Rand) int {
			return repro.BroadcastTime(g, 0, &protocols.RoundRobin{N: n}, budget, rng)
		}},
		{"push rumor", "single-port", func(rng *repro.Rand) int {
			return rumor.SpreadTime(g, 0, rumor.Push, budget, rng)
		}},
		{"push-pull rumor", "single-port", func(rng *repro.Rand) int {
			return rumor.SpreadTime(g, 0, rumor.PushPull, budget, rng)
		}},
	}

	fmt.Printf("%-26s %-12s %s\n", "protocol", "model", "median rounds (x ln n)")
	fmt.Printf("%-26s %-12s %s\n", "--------", "-----", "----------------------")
	for _, r := range rows {
		med := medianTime(r.run)
		note := fmt.Sprintf("%6d   (%.1f)", med, float64(med)/math.Log(n))
		if med > budget {
			note = fmt.Sprintf("did not finish in %d rounds", budget)
		}
		fmt.Printf("%-26s %-12s %s\n", r.name, r.model, note)
	}

	fmt.Println("\nReading: the paper's protocol pays only a constant over collision-free")
	fmt.Println("push; Decay pays an extra Θ(log) factor; deterministic schedules pay")
	fmt.Println("polynomially. This is the E5/E10 comparison at a single size.")
}
